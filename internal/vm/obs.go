package vm

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Process-wide engine counters. They live at package level — a process can
// host several interpreters (stingd, tests) and the metrics registry wants
// one family per process either way.
var (
	compiledForms atomic.Uint64 // toplevel forms lowered to bytecode
	fallbackForms atomic.Uint64 // toplevel forms declined to the tree-walker
	dispatchOps   atomic.Uint64 // instructions dispatched by exec loops
)

// NewCollector returns the bytecode-engine metrics source in the
// sting_vm_* family.
func NewCollector() obs.Collector {
	return obs.CollectorFunc(func() []obs.Metric {
		return []obs.Metric{
			obs.Counter("sting_vm_compiled_forms_total",
				"Toplevel forms compiled to bytecode by the vm engine.",
				float64(compiledForms.Load())),
			obs.Counter("sting_vm_fallback_forms_total",
				"Toplevel forms the compiler declined to the tree-walker.",
				float64(fallbackForms.Load())),
			obs.Counter("sting_vm_dispatch_ops_total",
				"Bytecode instructions dispatched by VM exec loops.",
				float64(dispatchOps.Load())),
		}
	})
}

// Stats answers the engine counters (compiled, fallback, dispatched) for
// tests and ablation reports.
func Stats() (compiled, fallback, dispatched uint64) {
	return compiledForms.Load(), fallbackForms.Load(), dispatchOps.Load()
}
