package vm

import (
	"repro/internal/core"
	"repro/internal/scheme"
)

// Engine is the bytecode execution engine for one interpreter. It compiles
// each toplevel form on arrival and runs it on the stack machine, declining
// (handled=false) anything the compiler does not cover so the interpreter
// falls back to the tree-walking reference evaluator.
type Engine struct {
	in *scheme.Interp
}

// New builds a bytecode engine bound to in.
func New(in *scheme.Interp) *Engine { return &Engine{in: in} }

// Name implements scheme.Engine.
func (e *Engine) Name() string { return "vm" }

// EvalToplevel implements scheme.Engine: compile the datum, run it in a
// fresh nullary activation over the global environment.
func (e *Engine) EvalToplevel(ctx *core.Context, expr scheme.Value, env *scheme.Env) (scheme.Value, bool, error) {
	if env != e.in.Global() {
		return nil, false, nil // engines only compile against the global frame
	}
	code, err := Compile(expr)
	if err != nil {
		fallbackForms.Add(1)
		return nil, false, nil
	}
	compiledForms.Add(1)
	v, err := e.exec(ctx, &Closure{Code: code, eng: e}, nil)
	return v, true, err
}

func init() {
	scheme.RegisterEngine("vm", func(in *scheme.Interp) scheme.Engine { return New(in) })
}
