package vm

import (
	"repro/internal/core"
	"repro/internal/scheme"
	"repro/internal/synch"
	"repro/internal/tspace"
)

// frame is one runtime environment rib: the slots of a binding construct or
// procedure activation, lexically chained. Slots are addressed (depth, slot)
// so variable access never hashes or allocates.
type frame struct {
	slots  []scheme.Value
	parent *frame
}

func (f *frame) at(depth int) *frame {
	for ; depth > 0; depth-- {
		f = f.parent
	}
	return f
}

// Closure is a compiled procedure: code plus its captured frame chain. It
// implements scheme.Procedure, so the tree-walker — Apply, map, thread
// thunks — calls it like any other procedure value.
type Closure struct {
	Code *Code
	Env  *frame
	Name scheme.Symbol
	eng  *Engine
}

// ApplyProc implements scheme.Procedure.
func (c *Closure) ApplyProc(in *scheme.Interp, ctx *core.Context, args []scheme.Value) (scheme.Value, error) {
	return c.eng.exec(ctx, c, args)
}

// ProcName implements scheme.Procedure.
func (c *Closure) ProcName() string { return string(c.Name) }

// Compiled implements scheme.CompiledProc for (compiled? p).
func (c *Closure) Compiled() bool { return true }

func (c *Closure) callName() string {
	if c.Name != "" {
		return string(c.Name)
	}
	return "#[procedure]"
}

// bindFrame builds the activation frame for a call, with the tree-walker's
// exact arity errors.
func bindFrame(c *Closure, args []scheme.Value) (*frame, error) {
	code := c.Code
	if !code.HasRest {
		if len(args) != code.NParams {
			return nil, scheme.Errorf("%s: want %d arguments, got %d",
				c.callName(), code.NParams, len(args))
		}
	} else if len(args) < code.NParams {
		return nil, scheme.Errorf("%s: want at least %d arguments, got %d",
			c.callName(), code.NParams, len(args))
	}
	slots := make([]scheme.Value, code.NSlots)
	copy(slots, args[:code.NParams])
	next := code.NParams
	if code.HasRest {
		rest := make([]scheme.Value, len(args)-code.NParams)
		copy(rest, args[code.NParams:])
		slots[next] = scheme.List(rest...)
		next++
	}
	for i := next; i < code.NSlots; i++ {
		slots[i] = scheme.Unspecified
	}
	return &frame{slots: slots, parent: c.Env}, nil
}

// nameValue gives an anonymous procedure the name its binding uses, as the
// tree-walker's define and letrec do.
func nameValue(v scheme.Value, name scheme.Symbol) {
	switch c := v.(type) {
	case *Closure:
		if c.Name == "" {
			c.Name = name
		}
	case *scheme.Closure:
		if c.Name == "" {
			c.Name = name
		}
	}
}

// saved is one suspended activation on the explicit call stack; vm→vm calls
// never recurse in Go, so non-tail Scheme recursion is heap-bounded.
type saved struct {
	code *Code
	pc   int
	fr   *frame
	base int
}

// exec runs a compiled closure to completion. Safepoints — calls, tail
// calls, backward branches — feed the interpreter's shared poll budget, so
// preemption and stealing fire with the tree-walker's density.
func (e *Engine) exec(ctx *core.Context, clo *Closure, args []scheme.Value) (scheme.Value, error) {
	in := e.in
	fr, err := bindFrame(clo, args)
	if err != nil {
		return nil, err
	}
	code := clo.Code
	pc := 0
	base := 0
	var stack []scheme.Value
	var calls []saved
	var ops uint64
	defer func() { dispatchOps.Add(ops) }()

	push := func(v scheme.Value) { stack = append(stack, v) }
	pop := func() scheme.Value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	for {
		ins := code.Ops[pc]
		pc++
		ops++
		switch ins.Op {
		case OpConst:
			push(code.Consts[ins.A])
		case OpUnspec:
			push(scheme.Unspecified)
		case OpLocal:
			push(fr.at(int(ins.A)).slots[ins.B])
		case OpSetLocal:
			fr.at(int(ins.A)).slots[ins.B] = pop()
			push(scheme.Unspecified)
		case OpInitSlot:
			v := pop()
			if ins.B >= 0 {
				nameValue(v, code.Consts[ins.B].(scheme.Symbol))
			}
			fr.slots[ins.A] = v
		case OpGlobal:
			sym := code.Consts[ins.A].(scheme.Symbol)
			v, ok := in.Global().Lookup(sym)
			if !ok {
				return nil, scheme.Errorf("unbound variable: %s", sym)
			}
			push(v)
		case OpSetGlobal:
			sym := code.Consts[ins.A].(scheme.Symbol)
			if !in.Global().Set(sym, pop()) {
				return nil, scheme.Errorf("set!: unbound variable %s", sym)
			}
			push(scheme.Unspecified)
		case OpDefGlobal:
			sym := code.Consts[ins.A].(scheme.Symbol)
			v := pop()
			nameValue(v, sym)
			in.Global().Define(sym, v)
			push(scheme.Unspecified)
		case OpJump:
			t := int(ins.A)
			if t < pc {
				in.Safepoint(ctx) // backward branch: loop safepoint
			}
			pc = t
		case OpJumpIfFalse:
			if !scheme.IsTruthy(pop()) {
				pc = int(ins.A)
			}
		case OpJumpTruthyKeep:
			if scheme.IsTruthy(stack[len(stack)-1]) {
				pc = int(ins.A)
			} else {
				pop()
			}
		case OpJumpFalsyKeep:
			if !scheme.IsTruthy(stack[len(stack)-1]) {
				pc = int(ins.A)
			} else {
				pop()
			}
		case OpJumpFalsyPop:
			if !scheme.IsTruthy(stack[len(stack)-1]) {
				pop()
				pc = int(ins.A)
			}
		case OpPop:
			pop()
		case OpDup:
			push(stack[len(stack)-1])
		case OpSwap:
			n := len(stack)
			stack[n-1], stack[n-2] = stack[n-2], stack[n-1]
		case OpClosure:
			in.AccountClosure(ctx)
			sub := code.Subs[ins.A]
			push(&Closure{Code: sub, Env: fr, Name: sub.Name, eng: e})
		case OpCall, OpTailCall:
			in.Safepoint(ctx)
			argc := int(ins.A)
			fnAt := len(stack) - argc - 1
			fn := stack[fnAt]
			cargs := make([]scheme.Value, argc)
			for i, a := range stack[fnAt+1:] {
				// Call sites collapse singleton multiple values, as the
				// tree-walker's evalArgs does.
				if mv, ok := a.(*scheme.MultiValues); ok && len(mv.Values) == 1 {
					a = mv.Values[0]
				}
				cargs[i] = a
			}
			stack = stack[:fnAt]
			if callee, ok := fn.(*Closure); ok && callee.eng == e {
				nfr, err := bindFrame(callee, cargs)
				if err != nil {
					return nil, err
				}
				if ins.Op == OpTailCall {
					stack = stack[:base]
				} else {
					calls = append(calls, saved{code: code, pc: pc, fr: fr, base: base})
					base = len(stack)
				}
				code, pc, fr = callee.Code, 0, nfr
				continue
			}
			// Foreign callee: a primitive, a tree closure, or another
			// engine's procedure. A tail call degrades to a plain call —
			// control always flows on to OpReturn.
			v, err := e.callForeign(ctx, fn, cargs)
			if err != nil {
				return nil, err
			}
			push(v)
		case OpReturn:
			v := pop()
			if len(calls) == 0 {
				return v, nil
			}
			s := calls[len(calls)-1]
			calls = calls[:len(calls)-1]
			stack = stack[:base]
			code, pc, fr, base = s.code, s.pc, s.fr, s.base
			push(v)
		case OpPushFrame:
			nslots, nstaged := int(ins.A), int(ins.B)
			slots := make([]scheme.Value, nslots)
			at := len(stack) - nstaged
			copy(slots, stack[at:])
			stack = stack[:at]
			for i := nstaged; i < nslots; i++ {
				slots[i] = scheme.Unspecified
			}
			fr = &frame{slots: slots, parent: fr}
		case OpPopFrame:
			fr = fr.parent
		case OpCaseMatch:
			key := stack[len(stack)-1]
			matched := false
			for _, d := range code.Consts[ins.A].([]scheme.Value) {
				if scheme.Eqv(key, d) {
					matched = true
					break
				}
			}
			if matched {
				pop()
			} else {
				pc = int(ins.B)
			}
		case OpPromise:
			sub := code.Subs[ins.A]
			push(scheme.NewPromise(&Closure{Code: sub, Env: fr, Name: sub.Name, eng: e}))
		case OpFork:
			vp := ctx.VP()
			if ins.A == 1 {
				v, err := scheme.CoerceVP(ctx, pop())
				if err != nil {
					return nil, err
				}
				vp = v
			}
			push(ctx.Fork(in.CloseThunk(pop()), vp))
		case OpCreateThread:
			push(ctx.CreateThread(in.CloseThunk(pop())))
		case OpFuture:
			push(ctx.Fork(in.CloseThunk(pop()), nil))
		case OpSpawn:
			n := int(ins.A)
			thunks := make([]core.Thunk, n)
			for i := n - 1; i >= 0; i-- {
				thunks[i] = in.CloseThunk(pop())
			}
			tsv := pop()
			ts, ok := tsv.(tspace.TupleSpace)
			if !ok {
				return nil, scheme.Errorf("spawn: not a tuple space: %s", scheme.WriteString(tsv))
			}
			threads, err := ts.Spawn(ctx, thunks...)
			if err != nil {
				return nil, err
			}
			out := make([]scheme.Value, len(threads))
			for i, t := range threads {
				out[i] = t
			}
			push(scheme.List(out...))
		case OpNoPreempt:
			thunk := pop()
			var v scheme.Value
			var callErr error
			ctx.WithoutPreemption(func() { v, callErr = e.callValue(ctx, thunk, nil) })
			if callErr != nil {
				return nil, callErr
			}
			push(v)
		case OpNoInterrupt:
			thunk := pop()
			var v scheme.Value
			var callErr error
			ctx.WithoutInterrupts(func() { v, callErr = e.callValue(ctx, thunk, nil) })
			if callErr != nil {
				return nil, callErr
			}
			push(v)
		case OpWithMutex:
			thunk := pop()
			mv := pop()
			m, ok := mv.(*synch.Mutex)
			if !ok {
				return nil, scheme.Errorf("with-mutex: not a mutex: %s", scheme.WriteString(mv))
			}
			v, err := func() (scheme.Value, error) {
				m.Acquire(ctx)
				defer m.Release()
				return e.callValue(ctx, thunk, nil)
			}()
			if err != nil {
				return nil, err
			}
			push(v)
		case OpFluid:
			thunk := pop()
			v := pop()
			sym := code.Consts[ins.A].(scheme.Symbol)
			var out scheme.Value
			var callErr error
			ctx.FluidLet(sym, v, func() { out, callErr = e.callValue(ctx, thunk, nil) })
			if callErr != nil {
				return nil, callErr
			}
			push(out)
		case OpAtomic:
			thunk := pop()
			v, err := in.RunAtomic(ctx, func() (scheme.Value, error) {
				return e.callValue(ctx, thunk, nil)
			})
			if err != nil {
				return nil, err
			}
			push(v)
		case OpTuple:
			spec := code.Consts[ins.A].(*tupleSpec)
			var body scheme.Value
			if spec.hasBody {
				body = pop()
			}
			exprVals := make([]scheme.Value, spec.nexpr)
			for i := spec.nexpr - 1; i >= 0; i-- {
				exprVals[i] = pop()
			}
			tsv := pop()
			ts, ok := tsv.(tspace.TupleSpace)
			if !ok {
				return nil, scheme.Errorf("%s: not a tuple space: %s", spec.name, scheme.WriteString(tsv))
			}
			tpl := make(tspace.Template, len(spec.fields))
			nx := 0
			for i, f := range spec.fields {
				switch f.kind {
				case fLit:
					tpl[i] = f.lit
				case fFormal:
					tpl[i] = tspace.F(f.name)
				case fExpr:
					tpl[i] = scheme.ToTupleValue(exprVals[nx])
					nx++
				}
			}
			tup, bind, err := in.MatchTuple(ctx, ts, tpl, spec.remove)
			if err != nil {
				return nil, err
			}
			if !spec.hasBody {
				push(scheme.List(tup...))
				break
			}
			bargs := make([]scheme.Value, len(spec.formals))
			for i, name := range spec.formals {
				bargs[i] = scheme.FromTupleValue(bind[name])
			}
			v, err := e.callValue(ctx, body, bargs)
			if err != nil {
				return nil, err
			}
			push(v)
		default:
			return nil, scheme.Errorf("vm: bad opcode %s", ins.Op)
		}
	}
}

// callValue invokes any procedure value — compiled closures re-enter exec,
// everything else routes through the tree-walker's Apply.
func (e *Engine) callValue(ctx *core.Context, fn scheme.Value, args []scheme.Value) (scheme.Value, error) {
	if clo, ok := fn.(*Closure); ok && clo.eng == e {
		return e.exec(ctx, clo, args)
	}
	return e.in.Apply(ctx, fn, args)
}

// callForeign applies a non-bytecode callee from the dispatch loop;
// primitives inline (they are the hot path), the rest goes through Apply.
func (e *Engine) callForeign(ctx *core.Context, fn scheme.Value, args []scheme.Value) (scheme.Value, error) {
	if p, ok := fn.(*scheme.Primitive); ok {
		if len(args) < p.Min || (p.Max >= 0 && len(args) > p.Max) {
			return nil, scheme.Errorf("%s: bad argument count %d", p.Name, len(args))
		}
		return p.Fn(e.in, ctx, args)
	}
	return e.in.Apply(ctx, fn, args)
}
