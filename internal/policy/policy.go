// Package policy provides the policy managers shipped with the substrate.
// A policy manager (PM) is what a virtual processor is closed over to
// obtain its scheduling, thread-placement, and migration regime (§3.3 of
// the paper); the thread controller never changes when the policy does.
//
// The managers here cover the paper's classification space:
//
//	Locality:      GlobalFIFO shares one queue per factory; the rest keep
//	               per-VP queues.
//	Granularity:   LocalLIFO and WorkStealing segregate evaluating threads
//	               (TCBs) from scheduled threads; GlobalFIFO and RoundRobin
//	               treat all runnables alike.
//	Structure:     FIFO, LIFO, priority heap, and earliest-deadline-first.
//	Serialization: LocalLIFO dispatches evaluating threads from a queue
//	               only its own VP locks briefly, while its scheduled queue
//	               is shared with migrating siblings; GlobalFIFO contends
//	               on one lock by design.
//
// The guidance encoded follows the paper: LIFO local queues suit
// tree-structured result-parallel programs; round-robin preemptive global
// queues suit master/slave worker farms; priorities suit speculation;
// deadlines suit soft-realtime threads.
package policy

import (
	"time"

	"repro/internal/core"
)

// Factory builds one policy manager per VP. Implementations that share
// state across VPs (global queues) return managers closed over the shared
// structure.
type Factory func(vp *core.VP) core.PolicyManager

// noopHints provides the hint methods managers that ignore priorities and
// quanta embed.
type noopHints struct{}

// SetPriority implements core.PolicyManager (priority ignored).
func (noopHints) SetPriority(*core.VP, *core.Thread, int) {}

// SetQuantum implements core.PolicyManager (the thread object carries it).
func (noopHints) SetQuantum(*core.VP, *core.Thread, time.Duration) {}

// allocVP implements pm-allocate-vp by growing the VM.
type allocVP struct{}

// AllocateVP implements core.PolicyManager.
func (allocVP) AllocateVP(vm *core.VM) *core.VP {
	vp, err := vm.AddVP()
	if err != nil {
		return nil
	}
	return vp
}

// deque is a tiny runnable deque used by the local managers.
type deque struct {
	items []core.Runnable
}

func (d *deque) pushBack(r core.Runnable)  { d.items = append(d.items, r) }
func (d *deque) pushFront(r core.Runnable) { d.items = append([]core.Runnable{r}, d.items...) }

func (d *deque) popBack() core.Runnable {
	n := len(d.items)
	if n == 0 {
		return nil
	}
	r := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	return r
}

func (d *deque) popFront() core.Runnable {
	if len(d.items) == 0 {
		return nil
	}
	r := d.items[0]
	d.items[0] = nil
	d.items = d.items[1:]
	return r
}

func (d *deque) len() int { return len(d.items) }
