package policy

import (
	"sync"

	"repro/internal/core"
)

// Unified returns a factory whose managers keep a single per-VP queue of
// runnables — the paper's "single queue regardless of state" granularity
// choice, and the configuration its baseline timings were measured under
// ("timings were derived using a single LIFO queue"). With lifo set,
// dispatch takes the newest runnable and yielding/preempted threads go to
// the far end (so yield-processor still lets other work run); without it,
// dispatch is oldest-first round-robin. The queue rides on the lock-free
// WorkQueue core: not-yet-evaluating unpinned threads sit in the Chase–Lev
// deque where idle siblings batch-steal them.
func Unified(lifo bool) Factory {
	var group unifiedGroup
	return func(vp *core.VP) core.PolicyManager {
		pm := &unifiedPM{group: &group}
		pm.wq.DeferYield = true
		pm.wq.FIFO = !lifo
		pm.wq.Owner = vp
		group.add(pm)
		return pm
	}
}

type unifiedGroup struct {
	mu  sync.Mutex
	pms []*unifiedPM
}

func (g *unifiedGroup) add(pm *unifiedPM) {
	g.mu.Lock()
	g.pms = append(g.pms, pm)
	g.mu.Unlock()
}

func (g *unifiedGroup) snapshot() []*unifiedPM {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*unifiedPM, len(g.pms))
	copy(out, g.pms)
	return out
}

type unifiedPM struct {
	noopHints
	allocVP
	group *unifiedGroup

	wq core.WorkQueue
}

// GetNextThread implements core.PolicyManager.
func (pm *unifiedPM) GetNextThread(vp *core.VP) core.Runnable {
	return pm.wq.Next()
}

// EnqueueThread implements core.PolicyManager. Lock-free; safe from any
// goroutine.
func (pm *unifiedPM) EnqueueThread(vp *core.VP, obj core.Runnable, st core.EnqueueState) {
	pm.wq.Enqueue(obj, st)
}

// VPIdle implements core.PolicyManager: batch-steal half of the most loaded
// sibling's stealable queue. Pinned threads and evaluating TCBs are never
// eligible; each element moves under its own top-CAS so there is no
// count-then-steal window.
func (pm *unifiedPM) VPIdle(vp *core.VP) {
	var victim *unifiedPM
	most := 0
	for _, sib := range pm.group.snapshot() {
		if sib == pm {
			continue
		}
		if n := sib.wq.StealableLen(); n > most {
			most, victim = n, sib
		}
	}
	if victim == nil || pm.wq.StealHalfFrom(&victim.wq, vp) == 0 {
		vp.Stats().FailedSteals.Add(1)
	}
}

// Len reports the queue length.
func (pm *unifiedPM) Len() int {
	return pm.wq.Len()
}
