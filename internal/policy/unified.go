package policy

import (
	"sync"

	"repro/internal/core"
)

// Unified returns a factory whose managers keep a single per-VP deque of
// runnables — the paper's "single queue regardless of state" granularity
// choice, and the configuration its baseline timings were measured under
// ("timings were derived using a single LIFO queue"). With lifo set,
// dispatch takes the newest runnable and yielding/preempted threads go to
// the far end (so yield-processor still lets other work run); without it,
// dispatch is oldest-first round-robin.
func Unified(lifo bool) Factory {
	var group unifiedGroup
	return func(vp *core.VP) core.PolicyManager {
		pm := &unifiedPM{lifo: lifo, group: &group}
		group.add(pm)
		return pm
	}
}

type unifiedGroup struct {
	mu  sync.Mutex
	pms []*unifiedPM
}

func (g *unifiedGroup) add(pm *unifiedPM) {
	g.mu.Lock()
	g.pms = append(g.pms, pm)
	g.mu.Unlock()
}

func (g *unifiedGroup) snapshot() []*unifiedPM {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*unifiedPM, len(g.pms))
	copy(out, g.pms)
	return out
}

type unifiedPM struct {
	noopHints
	allocVP
	lifo  bool
	group *unifiedGroup

	mu sync.Mutex
	dq deque
}

// GetNextThread implements core.PolicyManager.
func (pm *unifiedPM) GetNextThread(vp *core.VP) core.Runnable {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.lifo {
		return pm.dq.popBack()
	}
	return pm.dq.popFront()
}

// EnqueueThread implements core.PolicyManager.
func (pm *unifiedPM) EnqueueThread(vp *core.VP, obj core.Runnable, st core.EnqueueState) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if st == core.EnqYield || st == core.EnqPreempted {
		if pm.lifo {
			pm.dq.pushFront(obj) // behind everything the LIFO will pop
		} else {
			pm.dq.pushBack(obj) // to the end of the round-robin line
		}
		return
	}
	pm.dq.pushBack(obj)
}

// VPIdle implements core.PolicyManager: migrate one not-yet-evaluating
// thread from the most loaded sibling.
func (pm *unifiedPM) VPIdle(vp *core.VP) {
	var victim *unifiedPM
	most := 0
	for _, sib := range pm.group.snapshot() {
		if sib == pm {
			continue
		}
		sib.mu.Lock()
		n := 0
		for _, r := range sib.dq.items {
			if th, ok := r.(*core.Thread); ok && !th.Pinned() {
				n++
			}
		}
		sib.mu.Unlock()
		if n > most {
			most, victim = n, sib
		}
	}
	if victim == nil {
		return
	}
	victim.mu.Lock()
	var stolen core.Runnable
	for i, r := range victim.dq.items {
		if th, ok := r.(*core.Thread); ok && !th.Pinned() {
			stolen = r
			victim.dq.items = append(victim.dq.items[:i], victim.dq.items[i+1:]...)
			break
		}
	}
	victim.mu.Unlock()
	if stolen != nil {
		vp.Stats().Migrations.Add(1)
		pm.mu.Lock()
		pm.dq.pushBack(stolen)
		pm.mu.Unlock()
	}
}

// Len reports the queue length.
func (pm *unifiedPM) Len() int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.dq.len()
}
