package policy

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/core"
)

// Deadline is the fluid-binding key under which realtime threads carry
// their deadline (a time.Time). The Realtime manager reads the thread's
// creation-time fluid environment; threads without a deadline sort last.
// This mirrors the paper's observation that applications with real-time
// constraints should run under a different scheduling protocol than FIFO
// ones, using only substrate facilities (fluid bindings + a custom PM).
type deadlineKey struct{}

// DeadlineKey is the key applications bind deadlines under.
var DeadlineKey = deadlineKey{}

// WithDeadline is a convenience thread option attaching a deadline by
// extending the thread's fluid environment.
func WithDeadline(env *core.FluidEnv, d time.Time) *core.FluidEnv {
	return env.Bind(DeadlineKey, d)
}

// Realtime returns an earliest-deadline-first factory over one shared
// queue.
func Realtime() Factory {
	shared := &edfShared{}
	return func(vp *core.VP) core.PolicyManager {
		return &realtimePM{s: shared}
	}
}

type edfItem struct {
	r        core.Runnable
	deadline time.Time
	hasDL    bool
	seq      uint64
}

type edfHeap []edfItem

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	switch {
	case a.hasDL && !b.hasDL:
		return true
	case !a.hasDL && b.hasDL:
		return false
	case a.hasDL && b.hasDL && !a.deadline.Equal(b.deadline):
		return a.deadline.Before(b.deadline)
	default:
		return a.seq < b.seq
	}
}
func (h edfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x any)   { *h = append(*h, x.(edfItem)) }
func (h *edfHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type edfShared struct {
	mu  sync.Mutex
	h   edfHeap
	seq uint64
}

type realtimePM struct {
	noopHints
	allocVP
	s *edfShared
}

func runnableDeadline(r core.Runnable) (time.Time, bool) {
	var t *core.Thread
	switch x := r.(type) {
	case *core.Thread:
		t = x
	case *core.TCB:
		t = x.Thread()
	}
	if t == nil {
		return time.Time{}, false
	}
	if env := t.Fluid(); env != nil {
		if v, ok := env.Lookup(DeadlineKey); ok {
			if d, ok := v.(time.Time); ok {
				return d, true
			}
		}
	}
	return time.Time{}, false
}

// GetNextThread implements core.PolicyManager.
func (pm *realtimePM) GetNextThread(vp *core.VP) core.Runnable {
	pm.s.mu.Lock()
	defer pm.s.mu.Unlock()
	if pm.s.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&pm.s.h).(edfItem).r
}

// EnqueueThread implements core.PolicyManager.
func (pm *realtimePM) EnqueueThread(vp *core.VP, obj core.Runnable, st core.EnqueueState) {
	d, ok := runnableDeadline(obj)
	pm.s.mu.Lock()
	pm.s.seq++
	heap.Push(&pm.s.h, edfItem{r: obj, deadline: d, hasDL: ok, seq: pm.s.seq})
	pm.s.mu.Unlock()
	for _, sib := range vp.VM().VPs() {
		if sib != vp {
			sib.NotifyWork()
		}
	}
}

// VPIdle implements core.PolicyManager.
func (pm *realtimePM) VPIdle(vp *core.VP) {}
