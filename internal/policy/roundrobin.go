package policy

import (
	"sync"
	"time"

	"repro/internal/core"
)

// RoundRobin returns a preemptive round-robin factory: one shared FIFO
// queue, every dispatched thread bounded by the given quantum. The paper
// recommends this regime for master/slave applications — workers rarely
// block, so without preemption long-running workers would occupy all VPs at
// the expense of other ready threads.
//
// The quantum here acts as the manager's default; threads that set their
// own quantum keep it (pm-quantum is a hint).
func RoundRobin(quantum time.Duration) Factory {
	shared := &globalQueue{}
	return func(vp *core.VP) core.PolicyManager {
		return &roundRobin{q: shared, quantum: quantum}
	}
}

type roundRobin struct {
	allocVP
	q       *globalQueue
	quantum time.Duration

	hintMu sync.Mutex
	quanta map[*core.Thread]time.Duration
}

// GetNextThread implements core.PolicyManager.
func (pm *roundRobin) GetNextThread(vp *core.VP) core.Runnable {
	pm.q.mu.Lock()
	defer pm.q.mu.Unlock()
	return pm.q.dq.popFront()
}

// EnqueueThread implements core.PolicyManager: preempted and yielding
// threads go to the back — the essence of round-robin fairness.
func (pm *roundRobin) EnqueueThread(vp *core.VP, obj core.Runnable, st core.EnqueueState) {
	if t, ok := obj.(*core.Thread); ok && t.Quantum() == 0 {
		// Stamp the manager's quantum on threads without their own, so the
		// controller arms the preemption timer.
		pm.hintMu.Lock()
		q := pm.quantum
		if hq, ok := pm.quanta[t]; ok {
			q = hq
		}
		pm.hintMu.Unlock()
		t.SetQuantumHint(q)
	}
	pm.q.mu.Lock()
	pm.q.dq.pushBack(obj)
	pm.q.mu.Unlock()
	for _, sib := range vp.VM().VPs() {
		if sib != vp {
			sib.NotifyWork()
		}
	}
}

// SetPriority implements core.PolicyManager (FIFO order; ignored).
func (pm *roundRobin) SetPriority(*core.VP, *core.Thread, int) {}

// SetQuantum implements core.PolicyManager: remember the hint for future
// enqueues of this thread.
func (pm *roundRobin) SetQuantum(vp *core.VP, t *core.Thread, q time.Duration) {
	pm.hintMu.Lock()
	if pm.quanta == nil {
		pm.quanta = make(map[*core.Thread]time.Duration)
	}
	pm.quanta[t] = q
	pm.hintMu.Unlock()
	t.SetQuantumHint(q)
}

// VPIdle implements core.PolicyManager.
func (pm *roundRobin) VPIdle(vp *core.VP) {}
