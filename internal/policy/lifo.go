package policy

import (
	"sync"

	"repro/internal/core"
)

// LocalLIFOConfig tunes the LocalLIFO factory.
type LocalLIFOConfig struct {
	// Migrate allows idle VPs to take scheduled threads from siblings.
	// Evaluating threads (TCBs) are never migrated under this manager —
	// the granularity constraint that lets the evaluating queue go
	// effectively unlocked.
	Migrate bool
	// FIFO dispatches scheduled threads oldest-first instead of LIFO
	// (used by the Fig. 4 steal-dynamics experiment, where FIFO order
	// suppresses stealing in the primes program).
	FIFO bool
}

// LocalLIFO returns the canonical result-parallel factory: per-VP queues,
// LIFO dispatch (so tree-structured programs unfold depth-first and
// stealing is effective), optional idle-time migration of scheduled
// threads. This is the regime the paper recommends when many short threads
// exhibit strong data dependencies.
func LocalLIFO(cfg LocalLIFOConfig) Factory {
	var group localGroup
	return func(vp *core.VP) core.PolicyManager {
		pm := &localLIFO{cfg: cfg, group: &group}
		group.add(pm)
		return pm
	}
}

// localGroup links the managers of one factory so VPIdle can find victims.
type localGroup struct {
	mu  sync.Mutex
	pms []*localLIFO
}

func (g *localGroup) add(pm *localLIFO) {
	g.mu.Lock()
	g.pms = append(g.pms, pm)
	g.mu.Unlock()
}

func (g *localGroup) snapshot() []*localLIFO {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*localLIFO, len(g.pms))
	copy(out, g.pms)
	return out
}

type localLIFO struct {
	noopHints
	allocVP
	cfg   LocalLIFOConfig
	group *localGroup

	// evaluating holds TCBs: only this VP dispatches them and only wakers
	// enqueue, so the lock is uncontended in steady state.
	evalMu     sync.Mutex
	evaluating deque

	// scheduled holds threads; siblings migrate from here, so it is the
	// locked, shared-granularity queue.
	schedMu   sync.Mutex
	scheduled deque
}

// GetNextThread implements core.PolicyManager: evaluating threads first.
func (pm *localLIFO) GetNextThread(vp *core.VP) core.Runnable {
	pm.evalMu.Lock()
	if r := pm.evaluating.popBack(); r != nil {
		pm.evalMu.Unlock()
		return r
	}
	pm.evalMu.Unlock()
	pm.schedMu.Lock()
	defer pm.schedMu.Unlock()
	if pm.cfg.FIFO {
		return pm.scheduled.popFront()
	}
	return pm.scheduled.popBack()
}

// EnqueueThread implements core.PolicyManager.
func (pm *localLIFO) EnqueueThread(vp *core.VP, obj core.Runnable, st core.EnqueueState) {
	switch obj.(type) {
	case *core.TCB:
		pm.evalMu.Lock()
		pm.evaluating.pushBack(obj)
		pm.evalMu.Unlock()
	default:
		pm.schedMu.Lock()
		pm.scheduled.pushBack(obj)
		pm.schedMu.Unlock()
	}
}

// VPIdle implements core.PolicyManager: when configured, migrate the oldest
// scheduled thread from the most loaded sibling (oldest = least locality
// value to the victim, the usual work-stealing choice).
func (pm *localLIFO) VPIdle(vp *core.VP) {
	if !pm.cfg.Migrate {
		return
	}
	var victim *localLIFO
	most := 0
	for _, sib := range pm.group.snapshot() {
		if sib == pm {
			continue
		}
		sib.schedMu.Lock()
		n := sib.scheduled.len()
		sib.schedMu.Unlock()
		if n > most {
			most, victim = n, sib
		}
	}
	if victim == nil {
		return
	}
	victim.schedMu.Lock()
	var stolen core.Runnable
	for i, r := range victim.scheduled.items {
		if th, ok := r.(*core.Thread); ok && th.Pinned() {
			continue // explicitly placed threads stay put
		}
		stolen = r
		victim.scheduled.items = append(victim.scheduled.items[:i], victim.scheduled.items[i+1:]...)
		break
	}
	victim.schedMu.Unlock()
	if stolen != nil {
		vp.Stats().Migrations.Add(1)
		pm.schedMu.Lock()
		pm.scheduled.pushBack(stolen)
		pm.schedMu.Unlock()
	}
}

// Lens reports queue lengths (tests/diagnostics).
func (pm *localLIFO) Lens() (evaluating, scheduled int) {
	pm.evalMu.Lock()
	evaluating = pm.evaluating.len()
	pm.evalMu.Unlock()
	pm.schedMu.Lock()
	scheduled = pm.scheduled.len()
	pm.schedMu.Unlock()
	return
}
