package policy

import (
	"sync"

	"repro/internal/core"
)

// LocalLIFOConfig tunes the LocalLIFO factory.
type LocalLIFOConfig struct {
	// Migrate allows idle VPs to take scheduled threads from siblings.
	// Evaluating threads (TCBs) are never migrated under this manager —
	// the granularity constraint that lets the evaluating queue go
	// effectively unlocked.
	Migrate bool
	// FIFO dispatches scheduled threads oldest-first instead of LIFO
	// (used by the Fig. 4 steal-dynamics experiment, where FIFO order
	// suppresses stealing in the primes program).
	FIFO bool
}

// LocalLIFO returns the canonical result-parallel factory: per-VP
// work-stealing queues, LIFO dispatch (so tree-structured programs unfold
// depth-first and stealing is effective), optional idle-time batch migration
// of scheduled threads. This is the regime the paper recommends when many
// short threads exhibit strong data dependencies.
func LocalLIFO(cfg LocalLIFOConfig) Factory {
	var group localGroup
	return func(vp *core.VP) core.PolicyManager {
		pm := &localLIFO{cfg: cfg, group: &group}
		// Evaluating-first: TCBs (and pinned threads) sit on the owner-local
		// ready list, dispatched before scheduled threads regardless of how
		// they re-entered the queue.
		pm.wq.FIFO = cfg.FIFO
		pm.wq.Owner = vp
		group.add(pm)
		return pm
	}
}

// localGroup links the managers of one factory so VPIdle can find victims.
type localGroup struct {
	mu  sync.Mutex
	pms []*localLIFO
}

func (g *localGroup) add(pm *localLIFO) {
	g.mu.Lock()
	g.pms = append(g.pms, pm)
	g.mu.Unlock()
}

func (g *localGroup) snapshot() []*localLIFO {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*localLIFO, len(g.pms))
	copy(out, g.pms)
	return out
}

// localLIFO segregates runnables exactly as the paper's two-queue regime
// does, but on the lock-free WorkQueue core: TCBs and pinned threads live on
// the owner-local ready list (only this VP dispatches them, no lock at all),
// scheduled threads live in the Chase–Lev deque where sibling VPs batch-steal
// without ever blocking the owner.
type localLIFO struct {
	noopHints
	allocVP
	cfg   LocalLIFOConfig
	group *localGroup

	wq core.WorkQueue
}

// GetNextThread implements core.PolicyManager: evaluating threads first.
func (pm *localLIFO) GetNextThread(vp *core.VP) core.Runnable {
	return pm.wq.Next()
}

// EnqueueThread implements core.PolicyManager. Lock-free; safe from any
// goroutine.
func (pm *localLIFO) EnqueueThread(vp *core.VP, obj core.Runnable, st core.EnqueueState) {
	pm.wq.Enqueue(obj, st)
}

// VPIdle implements core.PolicyManager: when configured, batch-steal half of
// the stealable queue of the most loaded sibling. Each element moves under
// its own top-CAS, so there is no window for the victim to drain between a
// counting pass and a stealing pass, and pinned threads are never eligible.
func (pm *localLIFO) VPIdle(vp *core.VP) {
	if !pm.cfg.Migrate {
		return
	}
	var victim *localLIFO
	most := 0
	for _, sib := range pm.group.snapshot() {
		if sib == pm {
			continue
		}
		if n := sib.wq.StealableLen(); n > most {
			most, victim = n, sib
		}
	}
	if victim == nil || pm.wq.StealHalfFrom(&victim.wq, vp) == 0 {
		vp.Stats().FailedSteals.Add(1)
	}
}

// Lens reports queue lengths (tests/diagnostics): owner-local (evaluating)
// and stealable (scheduled).
func (pm *localLIFO) Lens() (evaluating, scheduled int) {
	return pm.wq.Lens()
}
