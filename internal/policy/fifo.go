package policy

import (
	"sync"

	"repro/internal/core"
)

// GlobalFIFO returns a factory whose managers share a single locked FIFO
// queue of runnables. Global queues imply contention among policy managers
// whenever they need a new thread, but — as the paper notes — they suit
// master/slave (worker-farm) programs: the master creates a bounded pool of
// long-lived workers that rarely block and spawn nothing, so a VP has no
// need to pay for maintaining a local queue, and FIFO order gives the farm
// fairness.
func GlobalFIFO() Factory {
	shared := &globalQueue{}
	return func(vp *core.VP) core.PolicyManager {
		return &globalFIFO{q: shared}
	}
}

type globalQueue struct {
	mu sync.Mutex
	dq deque
}

type globalFIFO struct {
	noopHints
	allocVP
	q *globalQueue
}

// GetNextThread implements core.PolicyManager.
func (pm *globalFIFO) GetNextThread(vp *core.VP) core.Runnable {
	pm.q.mu.Lock()
	defer pm.q.mu.Unlock()
	return pm.q.dq.popFront()
}

// EnqueueThread implements core.PolicyManager.
func (pm *globalFIFO) EnqueueThread(vp *core.VP, obj core.Runnable, st core.EnqueueState) {
	pm.q.mu.Lock()
	pm.q.dq.pushBack(obj)
	pm.q.mu.Unlock()
	// A global queue can be served by any VP; kick them all so idle PPs
	// notice (the controller already kicks vp itself).
	for _, sib := range vp.VM().VPs() {
		if sib != vp {
			sib.NotifyWork()
		}
	}
}

// VPIdle implements core.PolicyManager: with one shared queue there is
// nowhere to migrate from.
func (pm *globalFIFO) VPIdle(vp *core.VP) {}

// Len reports the shared queue length (diagnostics and tests).
func (pm *globalFIFO) Len() int {
	pm.q.mu.Lock()
	defer pm.q.mu.Unlock()
	return pm.q.dq.len()
}
