package policy

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/testkit"
)

// vmWithPolicy boots a 1-proc/1-VP VM under the given factory, where
// scheduling order is deterministic.
func vmWithPolicy(t *testing.T, procs, vps int, f Factory) *core.VM {
	t.Helper()
	return testkit.VMWith(t, procs, core.VMConfig{
		VPs:           vps,
		PolicyFactory: func(vp *core.VP) core.PolicyManager { return f(vp) },
	})
}

// spawnOrderProbe forks n no-op threads that record their execution order.
func spawnOrderProbe(ctx *core.Context, vm *core.VM, n int) (*[]int, []*core.Thread) {
	order := &[]int{}
	var mu sync.Mutex
	threads := make([]*core.Thread, n)
	for i := 0; i < n; i++ {
		i := i
		threads[i] = ctx.Fork(func(*core.Context) ([]core.Value, error) {
			mu.Lock()
			*order = append(*order, i)
			mu.Unlock()
			return nil, nil
		}, vm.VP(0), core.WithStealable(false))
	}
	return order, threads
}

func TestGlobalFIFOOrder(t *testing.T) {
	vm := vmWithPolicy(t, 1, 1, GlobalFIFO())
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		order, threads := spawnOrderProbe(ctx, vm, 8)
		for _, th := range threads {
			ctx.Wait(th)
		}
		for i, got := range *order {
			if got != i {
				t.Fatalf("order %v not FIFO", *order)
			}
		}
		return nil
	})
}

func TestLocalLIFOOrder(t *testing.T) {
	vm := vmWithPolicy(t, 1, 1, LocalLIFO(LocalLIFOConfig{}))
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		order, threads := spawnOrderProbe(ctx, vm, 8)
		for _, th := range threads {
			ctx.Wait(th)
		}
		n := len(*order)
		for i, got := range *order {
			if got != n-1-i {
				t.Fatalf("order %v not LIFO", *order)
			}
		}
		return nil
	})
}

func TestLocalFIFOVariant(t *testing.T) {
	vm := vmWithPolicy(t, 1, 1, LocalLIFO(LocalLIFOConfig{FIFO: true}))
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		order, threads := spawnOrderProbe(ctx, vm, 8)
		for _, th := range threads {
			ctx.Wait(th)
		}
		for i, got := range *order {
			if got != i {
				t.Fatalf("order %v not FIFO", *order)
			}
		}
		return nil
	})
}

func TestPriorityOrder(t *testing.T) {
	vm := vmWithPolicy(t, 1, 1, Priority())
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		var mu sync.Mutex
		var order []int
		prios := []int{1, 5, 3, 9, 7}
		threads := make([]*core.Thread, len(prios))
		for i, p := range prios {
			p := p
			threads[i] = ctx.Fork(func(*core.Context) ([]core.Value, error) {
				mu.Lock()
				order = append(order, p)
				mu.Unlock()
				return nil, nil
			}, vm.VP(0), core.WithPriority(p), core.WithStealable(false))
		}
		for _, th := range threads {
			ctx.Wait(th)
		}
		want := []int{9, 7, 5, 3, 1}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order %v, want %v", order, want)
			}
		}
		return nil
	})
}

func TestRealtimeEDF(t *testing.T) {
	vm := vmWithPolicy(t, 1, 1, Realtime())
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		var mu sync.Mutex
		var order []int
		now := time.Now()
		deadlines := []time.Duration{50 * time.Millisecond, 10 * time.Millisecond, 30 * time.Millisecond}
		threads := make([]*core.Thread, len(deadlines))
		for i, d := range deadlines {
			i := i
			env := WithDeadline(ctx.FluidEnvSnapshot(), now.Add(d))
			threads[i] = ctx.Fork(func(*core.Context) ([]core.Value, error) {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				return nil, nil
			}, vm.VP(0), core.WithFluid(env), core.WithStealable(false))
		}
		for _, th := range threads {
			ctx.Wait(th)
		}
		want := []int{1, 2, 0} // earliest deadline first
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order %v, want %v", order, want)
			}
		}
		return nil
	})
}

func TestMigrationBalancesLoad(t *testing.T) {
	vm := vmWithPolicy(t, 4, 4, LocalLIFO(LocalLIFOConfig{Migrate: true}))
	const n = 64
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		// Pile everything on VP 0; idle VPs must migrate threads over.
		threads := make([]*core.Thread, n)
		for i := range threads {
			threads[i] = ctx.Fork(func(c *core.Context) ([]core.Value, error) {
				for j := 0; j < 50; j++ {
					c.Poll()
				}
				return nil, nil
			}, vm.VP(0), core.WithStealable(false))
		}
		for _, th := range threads {
			ctx.Wait(th)
		}
		return nil
	})
	var migrations uint64
	for _, vp := range vm.VPs() {
		migrations += vp.Stats().Migrations.Load()
	}
	if migrations == 0 {
		t.Fatal("no migrations despite one-sided load")
	}
}

func TestRoundRobinPreemptsLongRunners(t *testing.T) {
	vm := vmWithPolicy(t, 1, 1, RoundRobin(200*time.Microsecond))
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		// Two compute-bound workers on one VP: without preemption the
		// first would finish before the second starts; with round-robin
		// quanta they interleave.
		var mu sync.Mutex
		var trace []int
		mark := func(id int) {
			mu.Lock()
			if n := len(trace); n == 0 || trace[n-1] != id {
				trace = append(trace, id)
			}
			mu.Unlock()
		}
		busy := func(id int) core.Thunk {
			return func(c *core.Context) ([]core.Value, error) {
				deadline := time.Now().Add(5 * time.Millisecond)
				for time.Now().Before(deadline) {
					mark(id)
					c.Poll() // the preemption point
				}
				return nil, nil
			}
		}
		t1 := ctx.Fork(busy(1), vm.VP(0), core.WithStealable(false))
		t2 := ctx.Fork(busy(2), vm.VP(0), core.WithStealable(false))
		ctx.Wait(t1)
		ctx.Wait(t2)
		mu.Lock()
		defer mu.Unlock()
		if len(trace) < 3 {
			t.Fatalf("no interleaving: trace %v", trace)
		}
		return nil
	})
	var preempts uint64
	for _, vp := range vm.VPs() {
		preempts += vp.Stats().Preemptions.Load()
	}
	if preempts == 0 {
		t.Fatal("no preemptions recorded")
	}
}

func TestDifferentPMsPerVP(t *testing.T) {
	// §3.3: different VPs in one VM can run different policy managers.
	lifo := LocalLIFO(LocalLIFOConfig{})
	fifo := GlobalFIFO()
	vm := testkit.VMWith(t, 2, core.VMConfig{
		VPs: 2,
		PolicyFactory: func(vp *core.VP) core.PolicyManager {
			if vp.Index() == 0 {
				return lifo(vp)
			}
			return fifo(vp)
		},
	})
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		a := ctx.Fork(func(*core.Context) ([]core.Value, error) { return testkit.One(1), nil }, vm.VP(0))
		b := ctx.Fork(func(*core.Context) ([]core.Value, error) { return testkit.One(2), nil }, vm.VP(1))
		va, err := ctx.Value1(a)
		if err != nil {
			return err
		}
		vb, err := ctx.Value1(b)
		if err != nil {
			return err
		}
		if va != 1 || vb != 2 {
			t.Errorf("values %v %v", va, vb)
		}
		return nil
	})
}
