package policy

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/core"
)

// Priority returns a factory whose managers share a max-priority heap.
// Programmable priorities are one of the two features the paper names as
// essential for speculative computation: promising tasks execute before
// unlikely ones. Ties dispatch in FIFO order so equal-priority threads are
// not starved.
func Priority() Factory {
	shared := &prioShared{}
	return func(vp *core.VP) core.PolicyManager {
		return &priorityPM{s: shared}
	}
}

type prioItem struct {
	r    core.Runnable
	prio int
	seq  uint64
}

type prioHeap []prioItem

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h prioHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x any)   { *h = append(*h, x.(prioItem)) }
func (h *prioHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

type prioShared struct {
	mu   sync.Mutex
	h    prioHeap
	seq  uint64
	prio map[*core.Thread]int // live priority overrides from pm-priority
}

type priorityPM struct {
	allocVP
	s *prioShared
}

func runnablePriority(s *prioShared, r core.Runnable) int {
	var t *core.Thread
	switch x := r.(type) {
	case *core.Thread:
		t = x
	case *core.TCB:
		t = x.Thread()
	}
	if t == nil {
		return 0
	}
	if s.prio != nil {
		if p, ok := s.prio[t]; ok {
			return p
		}
	}
	return t.Priority()
}

// GetNextThread implements core.PolicyManager.
func (pm *priorityPM) GetNextThread(vp *core.VP) core.Runnable {
	pm.s.mu.Lock()
	defer pm.s.mu.Unlock()
	if pm.s.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&pm.s.h).(prioItem).r
}

// EnqueueThread implements core.PolicyManager.
func (pm *priorityPM) EnqueueThread(vp *core.VP, obj core.Runnable, st core.EnqueueState) {
	pm.s.mu.Lock()
	pm.s.seq++
	heap.Push(&pm.s.h, prioItem{r: obj, prio: runnablePriority(pm.s, obj), seq: pm.s.seq})
	pm.s.mu.Unlock()
	for _, sib := range vp.VM().VPs() {
		if sib != vp {
			sib.NotifyWork()
		}
	}
}

// SetPriority implements core.PolicyManager: remember the hint and re-rank
// the thread at its next enqueue.
func (pm *priorityPM) SetPriority(vp *core.VP, t *core.Thread, priority int) {
	pm.s.mu.Lock()
	if pm.s.prio == nil {
		pm.s.prio = make(map[*core.Thread]int)
	}
	pm.s.prio[t] = priority
	// Re-rank queued entries for this thread in place.
	for i := range pm.s.h {
		var qt *core.Thread
		switch x := pm.s.h[i].r.(type) {
		case *core.Thread:
			qt = x
		case *core.TCB:
			qt = x.Thread()
		}
		if qt == t {
			pm.s.h[i].prio = priority
		}
	}
	heap.Init(&pm.s.h)
	pm.s.mu.Unlock()
}

// SetQuantum implements core.PolicyManager.
func (pm *priorityPM) SetQuantum(vp *core.VP, t *core.Thread, q time.Duration) {
	t.SetQuantumHint(q)
}

// VPIdle implements core.PolicyManager.
func (pm *priorityPM) VPIdle(vp *core.VP) {}
