package policy

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/testkit"
)

func TestUnifiedLIFOOrder(t *testing.T) {
	vm := vmWithPolicy(t, 1, 1, Unified(true))
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		order, threads := spawnOrderProbe(ctx, vm, 6)
		for _, th := range threads {
			ctx.Wait(th)
		}
		n := len(*order)
		for i, got := range *order {
			if got != n-1-i {
				t.Fatalf("order %v not LIFO", *order)
			}
		}
		return nil
	})
}

func TestUnifiedFIFOOrder(t *testing.T) {
	vm := vmWithPolicy(t, 1, 1, Unified(false))
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		order, threads := spawnOrderProbe(ctx, vm, 6)
		for _, th := range threads {
			ctx.Wait(th)
		}
		for i, got := range *order {
			if got != i {
				t.Fatalf("order %v not FIFO", *order)
			}
		}
		return nil
	})
}

func TestUnifiedYieldLetsOthersRun(t *testing.T) {
	// The single-queue regime must still avoid yield starvation: a thread
	// that yields goes behind ready work in both dispatch orders.
	for _, lifo := range []bool{true, false} {
		vm := vmWithPolicy(t, 1, 1, Unified(lifo))
		testkit.RunIn(t, vm, func(ctx *core.Context) error {
			var mu sync.Mutex
			ran := false
			other := ctx.Fork(func(*core.Context) ([]core.Value, error) {
				mu.Lock()
				ran = true
				mu.Unlock()
				return nil, nil
			}, nil, core.WithStealable(false))
			for i := 0; i < 100; i++ {
				ctx.Yield()
				mu.Lock()
				ok := ran
				mu.Unlock()
				if ok {
					break
				}
			}
			mu.Lock()
			defer mu.Unlock()
			if !ran {
				t.Errorf("lifo=%v: yield loop starved the ready thread", lifo)
			}
			ctx.Wait(other)
			return nil
		})
	}
}

func TestUnifiedMigrationSkipsPinned(t *testing.T) {
	vm := vmWithPolicy(t, 2, 2, Unified(true))
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		// A pinned thread queued on VP 0 must be dispatched by VP 0 even
		// while VP 1 idles and migrates everything else.
		var mu sync.Mutex
		ranOn := -1
		pinned := ctx.Fork(func(c *core.Context) ([]core.Value, error) {
			mu.Lock()
			ranOn = c.VP().Index()
			mu.Unlock()
			return nil, nil
		}, vm.VP(0), core.WithStealable(false), core.WithPinned())
		// Fill VP 0 with migratable decoys so the idle sibling has a
		// victim with work.
		decoys := make([]*core.Thread, 8)
		for i := range decoys {
			decoys[i] = ctx.Fork(func(c *core.Context) ([]core.Value, error) {
				for j := 0; j < 10; j++ {
					c.Poll()
				}
				return nil, nil
			}, vm.VP(0), core.WithStealable(false))
		}
		ctx.Wait(pinned)
		for _, d := range decoys {
			ctx.Wait(d)
		}
		mu.Lock()
		defer mu.Unlock()
		if ranOn != 0 {
			t.Errorf("pinned thread ran on vp %d", ranOn)
		}
		return nil
	})
}

func TestGlobalFIFOSharedAcrossVPs(t *testing.T) {
	// One shared queue: work forked onto any VP is served by whichever VP
	// asks first — verify both VPs dispatch from it.
	vm := vmWithPolicy(t, 2, 2, GlobalFIFO())
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		kids := make([]*core.Thread, 32)
		for i := range kids {
			kids[i] = ctx.Fork(func(c *core.Context) ([]core.Value, error) {
				for j := 0; j < 20; j++ {
					c.Poll()
				}
				return []core.Value{c.VP().Index()}, nil
			}, vm.VP(0), core.WithStealable(false))
		}
		for _, k := range kids {
			if _, err := ctx.Value1(k); err != nil {
				return err
			}
		}
		return nil
	})
	var dispatches uint64
	for _, vp := range vm.VPs() {
		dispatches += vp.Stats().Dispatches.Load()
	}
	if dispatches == 0 {
		t.Fatal("no dispatches recorded")
	}
}
