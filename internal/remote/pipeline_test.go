package remote

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/testkit"
	"repro/internal/tspace"
)

// startServerCfg is startServer with a caller-supplied config — the interop
// tests use MaxVersion to impersonate older servers.
func startServerCfg(t testing.TB, cfg ServerConfig) (*Server, string) {
	t.Helper()
	vm := testkit.VM(t, 2, 2)
	srv := NewServer(vm, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(srv.Shutdown)
	return srv, ln.Addr().String()
}

// TestHelloNegotiation pins min(client, server) version selection across
// the version matrix — the interop contract that lets v1–v3 peers keep
// talking to a v4 node and vice versa.
func TestHelloNegotiation(t *testing.T) {
	for _, tc := range []struct {
		client, server, want byte
	}{
		{0, 0, protocolVersion}, // both current
		{0, 3, 3},               // old server caps
		{0, 1, 1},
		{3, 0, 3}, // old client caps
		{1, 0, 1},
		{2, 3, 2}, // min wins both ways
		{3, 2, 2},
	} {
		_, addr := startServerCfg(t, ServerConfig{MaxVersion: tc.server})
		c := dialTest(t, addr, DialConfig{MaxVersion: tc.client})
		cc := c.conns[0]
		cc.mu.Lock()
		got := cc.version
		cc.mu.Unlock()
		if got != tc.want {
			t.Errorf("client v%d × server v%d negotiated %d, want %d",
				tc.client, tc.server, got, tc.want)
		}
		// The negotiated session must still carry data ops.
		if err := c.Space("x").Put(nil, tspace.Tuple{"a", 1}); err != nil {
			t.Errorf("Put at negotiated v%d: %v", got, err)
		}
	}
}

// TestBatchRoundTrip: with batching on, concurrent Puts coalesce into
// BATCH frames, land in their spaces, and are counted by both sides.
func TestBatchRoundTrip(t *testing.T) {
	srv, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{Batch: true})
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := c.Space(fmt.Sprintf("bucket%d", i%4))
			if err := sp.Put(nil, tspace.Tuple{"item", int64(i)}); err != nil {
				t.Errorf("Put %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	total := 0
	for b := 0; b < 4; b++ {
		total += c.Space(fmt.Sprintf("bucket%d", b)).Len()
	}
	if total != n {
		t.Fatalf("deposited %d tuples, want %d", total, n)
	}
	s := srv.Stats()
	if s.BatchPuts != n {
		t.Fatalf("server BatchPuts = %d, want %d (every put should batch)", s.BatchPuts, n)
	}
	if s.Ops["batch"] == 0 || s.Ops["batch"] > n {
		t.Fatalf("batch frames = %d, want within [1, %d]", s.Ops["batch"], n)
	}
	if c.metrics.batchedPuts.Load() != n {
		t.Fatalf("client batchedPuts = %d, want %d", c.metrics.batchedPuts.Load(), n)
	}
}

// TestBatchFallbackOldServer: a batching client against a pre-v4 server
// silently degrades to one PUT frame per op — nothing lost, nothing
// batched.
func TestBatchFallbackOldServer(t *testing.T) {
	srv, addr := startServerCfg(t, ServerConfig{MaxVersion: 3})
	c := dialTest(t, addr, DialConfig{Batch: true})
	const n = 25
	for i := 0; i < n; i++ {
		if err := c.Space("jobs").Put(nil, tspace.Tuple{"job", int64(i)}); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if got := c.Space("jobs").Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	s := srv.Stats()
	if s.BatchPuts != 0 || s.Ops["batch"] != 0 {
		t.Fatalf("v3 server saw batches: %+v", s.Ops)
	}
	if s.Ops["put"] != n {
		t.Fatalf("per-op puts = %d, want %d", s.Ops["put"], n)
	}
}

// TestBatchRouteCheckPerEntry: one misrouted tuple inside a batch fails
// alone with its typed redirect; its neighbours land.
func TestBatchRouteCheckPerEntry(t *testing.T) {
	srv, addr := startServerCfg(t, ServerConfig{
		RouteCheck: func(space string, tup tspace.Tuple, tpl tspace.Template) error {
			if space == "elsewhere" {
				return &RedirectError{Op: "put", Space: space, Node: "n2", Addr: "10.0.0.2:7000"}
			}
			return nil
		},
	})
	c := dialTest(t, addr, DialConfig{Batch: true})
	sp := c.Space("here")
	bad := c.Space("elsewhere")
	okA, err := sp.PutAsync(nil, tspace.Tuple{"a"})
	if err != nil {
		t.Fatalf("PutAsync a: %v", err)
	}
	badP, err := bad.PutAsync(nil, tspace.Tuple{"b"})
	if err != nil {
		t.Fatalf("PutAsync b: %v", err)
	}
	okC, err := sp.PutAsync(nil, tspace.Tuple{"c"})
	if err != nil {
		t.Fatalf("PutAsync c: %v", err)
	}
	if err := okA.Wait(nil); err != nil {
		t.Fatalf("a: %v", err)
	}
	if err := okC.Wait(nil); err != nil {
		t.Fatalf("c: %v", err)
	}
	err = badP.Wait(nil)
	if !errors.Is(err, ErrRedirect) {
		t.Fatalf("misrouted entry err = %v, want ErrRedirect", err)
	}
	var re *RedirectError
	if !errors.As(err, &re) || re.Node != "n2" {
		t.Fatalf("redirect = %+v, want node n2", re)
	}
	if got := sp.Len(); got != 2 {
		t.Fatalf("good entries deposited = %d, want 2", got)
	}
	if srv.Stats().Redirects != 1 {
		t.Fatalf("Redirects = %d, want 1", srv.Stats().Redirects)
	}
}

// TestBatchSplitsOversizedFrame: a flush whose entries exceed the frame
// limit together (but not individually) splits recursively instead of
// failing.
func TestBatchSplitsOversizedFrame(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{Batch: true})
	sp := c.Space("big")
	big := strings.Repeat("x", 8<<10) // 300 × 8KiB ≈ 2.4 MiB > maxFrame
	const n = 300
	pending := make([]*PendingPut, 0, n)
	for i := 0; i < n; i++ {
		p, err := sp.PutAsync(nil, tspace.Tuple{int64(i), big})
		if err != nil {
			t.Fatalf("PutAsync %d: %v", i, err)
		}
		pending = append(pending, p)
	}
	for i, p := range pending {
		if err := p.Wait(nil); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
	}
	if got := sp.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
}

// TestPutAsyncWindow: the window-of-N idiom — many unacknowledged puts in
// flight on one connection, acknowledged out of band.
func TestPutAsyncWindow(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})
	sp := c.Space("window")
	const n = 128
	pending := make([]*PendingPut, 0, n)
	for i := 0; i < n; i++ {
		p, err := sp.PutAsync(nil, tspace.Tuple{"w", int64(i)})
		if err != nil {
			t.Fatalf("PutAsync %d: %v", i, err)
		}
		pending = append(pending, p)
	}
	for i, p := range pending {
		if err := p.Wait(nil); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
	}
	if got := sp.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
}

// TestPipelinedBlockingOpsDoNotHeadOfLineBlock: a parked Get on the same
// connection must not delay ops issued after it.
func TestPipelinedBlockingOpsDoNotHeadOfLineBlock(t *testing.T) {
	srv, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})
	got := make(chan error, 1)
	go func() {
		_, _, err := c.Space("park").Get(nil, tspace.Template{"never", tspace.F("x")})
		got <- err
	}()
	testkit.Eventually(t, 5*time.Second, func() bool {
		return srv.Stats().Blocked == 1
	}, "Get never parked")
	// With the Get parked, later ops on the same connection must complete.
	start := time.Now()
	for i := 0; i < 20; i++ {
		if err := c.Space("flow").Put(nil, tspace.Tuple{"p", int64(i)}); err != nil {
			t.Fatalf("Put behind parked Get: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pipelined puts took %v behind a parked Get", elapsed)
	}
	// Satisfy the parked Get so the test exits cleanly.
	if err := c.Space("park").Put(nil, tspace.Tuple{"never", int64(1)}); err != nil {
		t.Fatalf("unblock Put: %v", err)
	}
	if err := <-got; err != nil {
		t.Fatalf("parked Get: %v", err)
	}
	// The server sampled depth > 1 at some arrival.
	if h := srv.stats.PipelineDepth; h == nil || h.Count() == 0 {
		t.Fatal("pipeline-depth histogram never sampled")
	}
}

// TestCloseFailsPendingBlockingGet: Close must fail a parked blocking Get
// promptly with the typed ErrClientClosed — not hang on the drain group
// (regression: Close used to wg.Wait on blocking ops with no bound).
func TestCloseFailsPendingBlockingGet(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(nil, addr, DialConfig{DrainTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		_, _, err := c.Space("park").Get(nil, tspace.Template{"never"})
		got <- err
	}()
	testkit.Eventually(t, 5*time.Second, func() bool {
		return srv.Stats().Blocked == 1
	}, "Get never parked")
	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("parked Get err = %v, want ErrClientClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked Get hung through Close")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v, want prompt drain", elapsed)
	}
	// The server notices the hangup and withdraws its parked waiter.
	testkit.Eventually(t, 5*time.Second, func() bool {
		return srv.Stats().Blocked == 0
	}, "server never withdrew the waiter")
}

// TestConnPoolShards: with Conns > 1 the client fans keyed ops across the
// pool (by space+first-field hash) while preserving Put/Get rendezvous.
func TestConnPoolShards(t *testing.T) {
	srv, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{Conns: 4})
	sp := c.Space("jobs")
	const keys = 32
	for i := 0; i < keys; i++ {
		if err := sp.Put(nil, tspace.Tuple{fmt.Sprintf("k%d", i), int64(i)}); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i := 0; i < keys; i++ {
		tup, _, err := sp.TryGet(nil, tspace.Template{fmt.Sprintf("k%d", i), tspace.F("v")})
		if err != nil {
			t.Fatalf("TryGet %d: %v", i, err)
		}
		if tup[1] != int64(i) {
			t.Fatalf("TryGet %d = %v", i, tup)
		}
	}
	dialed := 0
	for _, cc := range c.conns {
		cc.mu.Lock()
		if cc.fc != nil {
			dialed++
		}
		cc.mu.Unlock()
	}
	if dialed < 2 {
		t.Fatalf("dialed %d pool connections, want ≥2 (keys should shard)", dialed)
	}
	// Each pooled connection announced the pool size after its handshake.
	testkit.Eventually(t, 5*time.Second, func() bool {
		return srv.maxAnnouncedPool() == 4
	}, "server never learned the announced pool size")
}

// TestAnnounceSkippedForOldServer: a pre-v4 server must never receive the
// ANNOUNCE op (its decoder would close the connection).
func TestAnnounceSkippedForOldServer(t *testing.T) {
	srv, addr := startServerCfg(t, ServerConfig{MaxVersion: 2})
	c := dialTest(t, addr, DialConfig{Conns: 2})
	if err := c.Space("x").Put(nil, tspace.Tuple{"a", 1}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if n := srv.maxAnnouncedPool(); n != 0 {
		t.Fatalf("v2 server recorded pool size %d, want 0 (no ANNOUNCE)", n)
	}
	if srv.Stats().Ops["announce"] != 0 {
		t.Fatal("v2 server received an ANNOUNCE frame")
	}
}

// TestBatchWireRoundTrip pins the BATCH/respBatch wire encoding itself.
func TestBatchWireRoundTrip(t *testing.T) {
	req := request{op: opBatch, id: 42, batch: []batchEntry{
		{space: "a", tuple: tspace.Tuple{"x", int64(1)}},
		{space: "b", tuple: tspace.Tuple{true, 2.5, nil}},
	}}
	frame, err := encodeRequest(req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeRequest(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.id != 42 || len(got.batch) != 2 || got.batch[0].space != "a" ||
		got.batch[1].space != "b" || got.batch[0].tuple[1] != int64(1) {
		t.Fatalf("decoded %+v", got)
	}

	sts := []batchStatus{{code: 0}, {code: codeRedirect, msg: "n2 10.0.0.2:7000"}, {code: 0}}
	r, err := decodeResponse(appendBatchResp(nil, 42, sts))
	if err != nil {
		t.Fatalf("decode resp: %v", err)
	}
	if r.op != respBatch || r.id != 42 || len(r.batch) != 3 ||
		r.batch[1].code != codeRedirect || r.batch[1].msg != "n2 10.0.0.2:7000" ||
		r.batch[0].code != 0 || r.batch[0].msg != "" {
		t.Fatalf("decoded %+v", r)
	}

	// Bounds: an empty batch and an oversized one are rejected at encode.
	if _, err := encodeRequest(request{op: opBatch, id: 1}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("empty batch encode err = %v, want ErrProtocol", err)
	}
	over := make([]batchEntry, maxBatchOps+1)
	for i := range over {
		over[i] = batchEntry{space: "s", tuple: tspace.Tuple{int64(i)}}
	}
	if _, err := encodeRequest(request{op: opBatch, id: 1, batch: over}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized batch encode err = %v, want ErrProtocol", err)
	}
}
