package remote

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ServerCollector exposes a fabric server's counters and per-op latency
// histograms to the obs registry. Space depths are not emitted here — the
// registry's tspace.RegistryCollector owns sting_tspace_depth — so one
// scrape composed of both sources stays free of duplicates.
type ServerCollector struct {
	Server *Server
}

// Collect implements obs.Collector.
func (c ServerCollector) Collect() []obs.Metric {
	srv := c.Server
	if srv == nil {
		return nil
	}
	s := &srv.stats
	out := []obs.Metric{
		obs.Counter("sting_remote_proto_errors_total", "Malformed frames received.", float64(s.ProtoErrors.Load())),
		obs.Counter("sting_remote_timeouts_total", "Blocking ops expired server-side.", float64(s.Timeouts.Load())),
		obs.Counter("sting_remote_canceled_total", "Waiters withdrawn by disconnect or shutdown.", float64(s.Canceled.Load())),
		obs.Counter("sting_remote_redirects_total", "Keyed ops refused by the cluster route check.", float64(s.Redirects.Load())),
		obs.Gauge("sting_remote_blocked", "Ops currently parked inside a blocking Get/Rd.", float64(s.Blocked.Load())),
		obs.Counter("sting_remote_bytes_in_total", "Frame bytes received.", float64(s.BytesIn.Load())),
		obs.Counter("sting_remote_bytes_out_total", "Frame bytes sent.", float64(s.BytesOut.Load())),
		obs.Counter("sting_remote_conns_total", "Connections accepted.", float64(s.Conns.Load())),
		obs.Gauge("sting_remote_conns_active", "Connections currently open.", float64(s.ConnsActive.Load())),
	}
	for i := range s.OpsServed {
		op := byte(i + 1)
		if n := s.OpsServed[i].Load(); n > 0 {
			out = append(out, obs.Counter("sting_remote_ops_total", "Requests served, by wire op.", float64(n), obs.L("op", opName(op))))
		}
	}
	for i, h := range s.OpLatency {
		if h == nil {
			continue
		}
		out = append(out, obs.HistogramSample("sting_remote_op_latency_seconds",
			"Service latency from frame arrival to response completion, by wire op.",
			h, obs.L("op", opName(byte(i+1)))))
	}
	if s.PipelineDepth != nil {
		out = append(out, obs.HistogramSample("sting_remote_pipeline_depth",
			"In-flight requests on a connection when each frame arrived (1 = strict request/response).",
			s.PipelineDepth))
	}
	if s.BatchSize != nil {
		out = append(out, obs.HistogramSample("sting_remote_batch_size",
			"Puts coalesced per BATCH frame.", s.BatchSize))
	}
	out = append(out,
		obs.Counter("sting_remote_batch_puts_total", "Tuples deposited via BATCH frames.", float64(s.BatchPuts.Load())),
		obs.Gauge("sting_remote_conn_pool_size", "Largest connection-pool size announced by a live client (ANNOUNCE, version ≥4).", float64(srv.maxAnnouncedPool())))
	return out
}

// clientMetrics instruments one fabric client: dial latency (including
// backoff sleeps), per-op round-trip latency, and retry/timeout counts.
// All recording is lock-free; a zero histogram pointer disables its site.
type clientMetrics struct {
	dialLatency  *obs.Histogram
	opLatency    [12]*obs.Histogram
	dialRetries  atomic.Uint64
	dialFails    atomic.Uint64
	opRetries    atomic.Uint64
	timeouts     atomic.Uint64
	batchFlushes atomic.Uint64 // BATCH frames written
	batchedPuts  atomic.Uint64 // puts that traveled inside a BATCH frame
}

func newClientMetrics() *clientMetrics {
	m := &clientMetrics{dialLatency: obs.NewHistogram()}
	for i := range m.opLatency {
		m.opLatency[i] = obs.NewHistogram()
	}
	return m
}

func (m *clientMetrics) observeOp(op byte, d time.Duration) {
	if m == nil {
		return
	}
	if op >= 1 && int(op) <= len(m.opLatency) {
		if h := m.opLatency[op-1]; h != nil {
			h.Observe(d.Seconds())
		}
	}
}

// ClientCollector exposes one client's dial/op/retry/timeout metrics,
// labelled by the server address it targets.
type ClientCollector struct {
	Client *Client
}

// Collect implements obs.Collector.
func (c ClientCollector) Collect() []obs.Metric {
	cl := c.Client
	if cl == nil || cl.metrics == nil {
		return nil
	}
	m := cl.metrics
	addr := obs.L("addr", cl.addr)
	out := []obs.Metric{
		obs.HistogramSample("sting_remote_client_dial_seconds", "Connect+HELLO latency per successful dial, including backoff.", m.dialLatency, addr),
		obs.Counter("sting_remote_client_dial_retries_total", "Dial attempts beyond the first.", float64(m.dialRetries.Load()), addr),
		obs.Counter("sting_remote_client_dial_failures_total", "Dials that exhausted their retry budget.", float64(m.dialFails.Load()), addr),
		obs.Counter("sting_remote_client_op_retries_total", "Operation re-sends after a provably unwritten frame.", float64(m.opRetries.Load()), addr),
		obs.Counter("sting_remote_client_timeouts_total", "Operations that exceeded their deadline.", float64(m.timeouts.Load()), addr),
		obs.Counter("sting_remote_client_batch_flushes_total", "BATCH frames written.", float64(m.batchFlushes.Load()), addr),
		obs.Counter("sting_remote_client_batched_puts_total", "Puts coalesced into BATCH frames.", float64(m.batchedPuts.Load()), addr),
		obs.Gauge("sting_remote_conn_pool_size", "Connections in this client's pool.", float64(len(cl.conns)), addr),
	}
	for i, h := range m.opLatency {
		if h == nil || h.Count() == 0 {
			continue
		}
		out = append(out, obs.HistogramSample("sting_remote_client_op_latency_seconds",
			"Client-observed round-trip latency, by wire op.",
			h, addr, obs.L("op", opName(byte(i+1)))))
	}
	return out
}

// Collector returns an obs.Collector over this client's metrics, ready to
// Register into a registry.
func (c *Client) Collector() obs.Collector { return ClientCollector{Client: c} }
