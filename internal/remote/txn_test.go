package remote

import (
	"errors"
	"testing"

	"repro/internal/tspace"
)

func TestTxnCommitOverWire(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})
	sp := c.Space("bank")

	if err := sp.Put(nil, tspace.Tuple{"acct", "a", 100}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	tup, _, err := sp.TryRd(nil, tspace.Template{"acct", "a", tspace.F("n")})
	if err != nil {
		t.Fatalf("TryRd: %v", err)
	}
	err = c.CommitTxn(nil, []tspace.TxnOp{
		{Kind: tspace.TxnTake, Space: "bank", Tup: tup},
		{Kind: tspace.TxnPut, Space: "bank", Tup: tspace.Tuple{"acct", "a", int64(60)}},
		{Kind: tspace.TxnPut, Space: "bank", Tup: tspace.Tuple{"acct", "b", int64(40)}},
	})
	if err != nil {
		t.Fatalf("CommitTxn: %v", err)
	}
	if _, _, err := sp.TryRd(nil, tspace.Template{"acct", "a", 60}); err != nil {
		t.Errorf("post-commit a: %v", err)
	}
	if _, _, err := sp.TryRd(nil, tspace.Template{"acct", "b", 40}); err != nil {
		t.Errorf("post-commit b: %v", err)
	}
	if n := sp.Len(); n != 2 {
		t.Errorf("Len = %d, want 2", n)
	}
}

func TestTxnCommitConflictOverWire(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})

	// Taking a tuple that does not exist fails validation server-side and
	// must surface as a typed conflict, not an opaque internal error.
	err := c.CommitTxn(nil, []tspace.TxnOp{
		{Kind: tspace.TxnTake, Space: "bank", Tup: tspace.Tuple{"acct", "ghost", int64(1)}},
	})
	if !errors.Is(err, tspace.ErrTxnConflict) {
		t.Fatalf("err = %v, want ErrTxnConflict", err)
	}
	var ce *tspace.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("err %T does not unwrap to *ConflictError", err)
	}
	// An aborted commit deposits nothing.
	if n := c.Space("bank").Len(); n != 0 {
		t.Errorf("Len = %d after failed commit, want 0", n)
	}
}

func TestTxnCommitNeedsVersion3(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})

	// Run one op so the connection (and negotiated version) exists, then
	// force the handshake result down to a pre-TXNCOMMIT version.
	if err := c.Space("v").Put(nil, tspace.Tuple{"x", 1}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	cc := c.conns[0]
	cc.mu.Lock()
	cc.version = 2
	cc.mu.Unlock()

	err := c.CommitTxn(nil, []tspace.TxnOp{
		{Kind: tspace.TxnPut, Space: "v", Tup: tspace.Tuple{"y", int64(2)}},
	})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestTxnCommitEmptyLog(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})
	if err := c.CommitTxn(nil, nil); err != nil {
		t.Fatalf("empty commit: %v", err)
	}
}

func TestTxnOpsRequestCodec(t *testing.T) {
	req := request{op: opTxnCommit, id: 9, space: "bank", txnOps: []tspace.TxnOp{
		{Kind: tspace.TxnRead, Space: "bank", Ver: 3, Tup: tspace.Tuple{"r", int64(1)}},
		{Kind: tspace.TxnPut, Space: "audit", Tup: tspace.Tuple{"log", "r"}},
	}}
	frame, err := encodeRequest(req)
	if err != nil {
		t.Fatalf("encodeRequest: %v", err)
	}
	got, err := decodeRequest(frame)
	if err != nil {
		t.Fatalf("decodeRequest: %v", err)
	}
	if got.op != opTxnCommit || got.id != 9 || len(got.txnOps) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	if got.txnOps[0].Ver != 3 || got.txnOps[1].Space != "audit" {
		t.Errorf("ops round-trip mismatch: %+v", got.txnOps)
	}
}
