package remote

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/sio"
	"repro/internal/tspace"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []request{
		{op: opHello, id: 1},
		{op: opPut, id: 2, space: "jobs", tuple: tspace.Tuple{"job", int64(7), 3.5, "s", true, nil}},
		{op: opGet, id: 3, deadline: 250 * time.Millisecond, space: "jobs",
			template: tspace.Template{"job", tspace.F("n")}},
		{op: opTryRd, id: 4, space: "q", template: tspace.Template{tspace.F("")}},
		{op: opStats, id: 5},
		{op: opLen, id: 6, space: "jobs"},
	}
	for _, want := range cases {
		frame, err := encodeRequest(want)
		if err != nil {
			t.Fatalf("encode %s: %v", opName(want.op), err)
		}
		got, err := decodeRequest(frame)
		if err != nil {
			t.Fatalf("decode %s: %v", opName(want.op), err)
		}
		if got.op != want.op || got.id != want.id || got.space != want.space ||
			got.deadline != want.deadline {
			t.Fatalf("header mismatch: got %+v want %+v", got, want)
		}
		if len(got.tuple) != len(want.tuple) || len(got.template) != len(want.template) {
			t.Fatalf("body mismatch: got %+v want %+v", got, want)
		}
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	valid, _ := encodeRequest(request{op: opPut, id: 1, space: "s", tuple: tspace.Tuple{"x", 1}})
	cases := map[string][]byte{
		"empty":            {},
		"short header":     {opPut, 0, 0},
		"unknown op":       {99, 0, 0, 0, 1, 0, 0, 0, 0, 0},
		"bad name length":  {opLen, 0, 0, 0, 1, 0, 0, 0, 0, 0xff},
		"truncated tuple":  valid[:len(valid)-1],
		"trailing bytes":   append(bytes.Clone(valid), 0),
		"oversized name":   append([]byte{opLen, 0, 0, 0, 1, 0, 0, 0, 0, 0xff, 0x7f}, make([]byte, 300)...),
		"bad hello body":   {opHello, 0, 0, 0, 1, 0, 0, 0, 0, 0},
		"version zero":     {opHello, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0},
		"stats with body":  {opStats, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1},
		"template in put":  mustEncodeTemplateAsPut(t),
		"formal arity lie": {opGet, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0xff},
	}
	for name, b := range cases {
		if _, err := decodeRequest(b); !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: err = %v, want ErrProtocol", name, err)
		}
	}
}

// mustEncodeTemplateAsPut builds an opPut frame whose body is a template
// (contains a formal) — the decoder must reject formals in tuples.
func mustEncodeTemplateAsPut(t *testing.T) []byte {
	t.Helper()
	frame, err := encodeRequest(request{op: opGet, id: 9, space: "s",
		template: tspace.Template{tspace.F("x")}})
	if err != nil {
		t.Fatalf("encode template: %v", err)
	}
	frame = bytes.Clone(frame)
	frame[0] = opPut
	return frame
}

func TestResponseRoundTrip(t *testing.T) {
	tup := tspace.Tuple{"r", int64(1)}
	bind := tspace.Bindings{"x": int64(1)}
	frame, err := encodeTupleResp(7, tup, bind)
	if err != nil {
		t.Fatalf("encodeTupleResp: %v", err)
	}
	r, err := decodeResponse(frame)
	if err != nil {
		t.Fatalf("decodeResponse: %v", err)
	}
	if r.op != respTuple || r.id != 7 || r.tuple[0] != "r" || r.bind["x"] != int64(1) {
		t.Fatalf("decoded %+v", r)
	}

	r, err = decodeResponse(encodeErrResp(8, codeTimeout, "late"))
	if err != nil {
		t.Fatalf("decode err resp: %v", err)
	}
	werr := wireError(r, "get", "jobs", time.Second)
	if !errors.Is(werr, ErrTimeout) {
		t.Fatalf("wireError = %v, want timeout", werr)
	}
	r, _ = decodeResponse(encodeErrResp(9, codeShutdown, "bye"))
	if !errors.Is(wireError(r, "get", "jobs", 0), ErrShutdown) {
		t.Fatal("shutdown code not mapped")
	}

	r, err = decodeResponse(encodeLenResp(10, 42))
	if err != nil || r.length != 42 {
		t.Fatalf("len resp: %v %+v", err, r)
	}

	snap := StatsSnapshot{
		Ops:         map[string]uint64{"put": 3, "get": 1},
		Timeouts:    2,
		BytesIn:     100,
		Blocked:     1,
		SpaceDepths: map[string]int{"jobs": 4, "results": 0},
	}
	r, err = decodeResponse(encodeStatsResp(11, snap))
	if err != nil {
		t.Fatalf("stats resp: %v", err)
	}
	if r.stats.Ops["put"] != 3 || r.stats.Timeouts != 2 || r.stats.Blocked != 1 ||
		r.stats.SpaceDepths["jobs"] != 4 {
		t.Fatalf("stats decoded %+v", r.stats)
	}
}

// TestServerClosesOnMalformedFrame: a garbage frame draws a protocol
// error response and the connection is closed — satellite requirement.
func TestServerClosesOnMalformedFrame(t *testing.T) {
	srv, addr := startServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	fc := sio.NewFrameConn(nc, maxFrame, time.Second)
	frames := make(chan []byte, 2)
	errs := make(chan error, 1)
	fc.Start(func(frame []byte, err error) {
		if err != nil {
			errs <- err
			return
		}
		frames <- frame
	})
	if err := fc.WriteFrame([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	select {
	case frame := <-frames:
		r, err := decodeResponse(frame)
		if err != nil {
			t.Fatalf("reply undecodable: %v", err)
		}
		if r.op != respErr || r.code != codeProtocol {
			t.Fatalf("reply op=%d code=%d, want respErr/codeProtocol", r.op, r.code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no protocol-error reply")
	}
	select {
	case err := <-errs:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("terminal err = %v, want EOF (connection closed)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server left the connection open after a malformed frame")
	}
	if srv.Stats().ProtoErrors != 1 {
		t.Fatalf("proto errors = %d, want 1", srv.Stats().ProtoErrors)
	}
}

// FuzzDecodeFrame: whatever bytes arrive, request and response decoding
// must return a value or an error — never panic (satellite #3). Valid
// encodings must survive a round trip.
func FuzzDecodeFrame(f *testing.F) {
	seeds := []request{
		{op: opHello, id: 1},
		{op: opPut, id: 2, space: "jobs", tuple: tspace.Tuple{"job", int64(7), 2.5, true, nil}},
		{op: opGet, id: 3, deadline: time.Second, space: "jobs",
			template: tspace.Template{"job", tspace.F("n")}},
		{op: opStats, id: 4},
		{op: opLen, id: 5, space: "q"},
		{op: opBatch, id: 6, batch: []batchEntry{
			{space: "a", tuple: tspace.Tuple{"x", int64(1)}},
			{space: "b", tuple: tspace.Tuple{true, nil}},
		}},
		{op: opAnnounce, id: 7, poolSize: 4},
	}
	for _, req := range seeds {
		frame, err := encodeRequest(req)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(frame)
	}
	if frame, err := encodeTupleResp(6, tspace.Tuple{"r", int64(1)}, tspace.Bindings{"x": int64(1)}); err == nil {
		f.Add(frame)
	}
	f.Add(encodeErrResp(7, codeTimeout, "t"))
	f.Add(encodeStatsResp(8, StatsSnapshot{Ops: map[string]uint64{"put": 1},
		SpaceDepths: map[string]int{"jobs": 1}}))
	f.Add(appendBatchResp(nil, 9, []batchStatus{{code: 0}, {code: codeRedirect, msg: "n2 addr"}}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		// Decode from a scratch copy so the mutate-after-return probe below
		// can scribble over it, mimicking a pooled frame buffer being
		// recycled (StartPooled) the moment the callback returns.
		reqBuf := bytes.Clone(b)
		req, err := decodeRequest(reqBuf)
		if err == nil {
			// Anything that decodes must re-encode and decode identically
			// at the header level.
			frame, err := encodeRequest(req)
			if err != nil {
				t.Fatalf("re-encode of valid request failed: %v", err)
			}
			// Aliasing probe: scribbling the input buffer must not change
			// the decoded request — every retained string and slice must be
			// a deep copy, or pooled reads would corrupt in-flight requests.
			for i := range reqBuf {
				reqBuf[i] ^= 0xff
			}
			frame2, err := encodeRequest(req)
			if err != nil || !bytes.Equal(frame, frame2) {
				t.Fatalf("decoded request aliases its input buffer (err=%v)", err)
			}
			req2, err := decodeRequest(frame)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if req2.op != req.op || req2.id != req.id || req2.space != req.space {
				t.Fatalf("round trip drifted: %+v vs %+v", req, req2)
			}
		} else if !errors.Is(err, ErrProtocol) {
			t.Fatalf("decodeRequest error %v does not wrap ErrProtocol", err)
		}
		respBuf := bytes.Clone(b)
		r1, err := decodeResponse(respBuf)
		if err != nil && !errors.Is(err, ErrProtocol) {
			t.Fatalf("decodeResponse error %v does not wrap ErrProtocol", err)
		}
		if err == nil {
			// Same aliasing probe on the response decoder: compare the
			// string-bearing fields against an independent decode of the
			// pristine bytes after scribbling the first decode's input.
			r2, err2 := decodeResponse(b)
			if err2 != nil {
				t.Fatalf("second decode of identical bytes failed: %v", err2)
			}
			for i := range respBuf {
				respBuf[i] ^= 0xff
			}
			if r1.message != r2.message {
				t.Fatal("decoded response message aliases its input buffer")
			}
			for i := range r1.tuple {
				s1, ok1 := r1.tuple[i].(string)
				s2, ok2 := r2.tuple[i].(string)
				if ok1 != ok2 || s1 != s2 {
					t.Fatal("decoded tuple string aliases its input buffer")
				}
			}
			for i := range r1.batch {
				if r1.batch[i] != r2.batch[i] {
					t.Fatal("decoded batch status aliases its input buffer")
				}
			}
		}
	})
}
