package remote

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sio"
	"repro/internal/tspace"
)

// DialConfig tunes the client's retry, deadline, drain, and pipelining
// behaviour. The zero value is usable; every field has a default.
type DialConfig struct {
	// DialRetries bounds how many times Dial (and a mid-session redial)
	// re-attempts the connect+HELLO exchange after a transient failure
	// (default 4, so 5 attempts total).
	DialRetries int
	// BaseBackoff is the first retry's sleep; each further attempt doubles
	// it up to MaxBackoff (defaults 25ms, 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OpRetries bounds how many times an operation is re-sent when its
	// request frame was provably never written (default 2). An op whose
	// frame may have reached the server is never retried — a second Put
	// must not double-deposit.
	OpRetries int
	// Timeout bounds non-blocking round trips (TryGet, Len, Stats, Put)
	// and the HELLO exchange (default 5s). Blocking Get/Rd are bounded by
	// their per-op deadline, enforced server-side.
	Timeout time.Duration
	// WriteTimeout bounds one frame write (default 10s).
	WriteTimeout time.Duration
	// DrainTimeout bounds how long Close waits for in-flight non-blocking
	// operations to complete before failing the rest (default 5s).
	DrainTimeout time.Duration
	// Conns sets the connection-pool size (default 1). With N > 1 each op
	// shards onto a connection by the stable hash of its space+first
	// field (round-robin when unkeyable), so one connection's writer is
	// never the whole client's bottleneck. The pool dials lazily: only
	// the first connection is established by Dial.
	Conns int
	// Batch coalesces Puts into BATCH frames (protocol ≥4): a per-
	// connection flusher writes whatever accumulated during the previous
	// write (group commit), so a lone Put flushes immediately while a
	// burst amortizes into one frame. Against an older peer Puts fall
	// back to one frame each. Latency-sensitive ops (Get/Rd and their
	// Try probes) are never batched.
	Batch bool
	// MaxVersion caps the protocol version announced in HELLO (default
	// protocolVersion); tests use it to impersonate older peers.
	MaxVersion byte
}

func (cfg DialConfig) withDefaults() DialConfig {
	if cfg.DialRetries == 0 {
		cfg.DialRetries = 4
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.OpRetries == 0 {
		cfg.OpRetries = 2
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.MaxVersion == 0 || cfg.MaxVersion > protocolVersion {
		cfg.MaxVersion = protocolVersion
	}
	return cfg
}

// backoff returns the sleep before retry attempt (0-based), exponential
// and capped.
func (cfg DialConfig) backoff(attempt int) time.Duration {
	d := cfg.BaseBackoff
	for i := 0; i < attempt && d < cfg.MaxBackoff; i++ {
		d *= 2
	}
	return min(d, cfg.MaxBackoff)
}

// Close-drain and batching sentinels.
var (
	// ErrClientClosed fails the calls still in flight when Close tears
	// the client down — above all blocking Gets parked past DrainTimeout.
	// Distinct from net.ErrClosed, which rejects ops started after Close.
	ErrClientClosed = errors.New("remote: client closed with operation in flight")
	// errBatchUnwritten marks batch entries whose frame provably never
	// reached the socket; the Put wrapper retries them (bounded).
	errBatchUnwritten = errors.New("remote: batch frame never written")
	// errBatchFallback sends a Put down the per-op path: the peer
	// negotiated a protocol version that predates BATCH.
	errBatchFallback = errors.New("remote: peer predates batch frames")
)

// call is one in-flight request awaiting its response frame.
type call struct {
	mu   sync.Mutex
	done bool
	resp response
	err  error
	ch   chan struct{}
	tcb  *core.TCB   // parked STING waiter to wake, when set
	subs []batchItem // batch parent: per-entry calls, completed on arrival
}

func newCall() *call { return &call{ch: make(chan struct{})} }

func (c *call) complete(resp response, err error) {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return
	}
	c.done = true
	c.resp, c.err = resp, err
	tcb := c.tcb
	subs := c.subs
	c.mu.Unlock()
	close(c.ch)
	if tcb != nil {
		core.WakeTCB(tcb)
	}
	if subs != nil {
		distributeBatch(subs, resp, err)
	}
}

func (c *call) completed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// distributeBatch fans a BATCH reply (or its transport error) out to the
// per-entry calls.
func distributeBatch(items []batchItem, resp response, err error) {
	if err == nil && resp.op == respErr {
		err = wireError(resp, "batch", "", 0)
	}
	if err == nil && (resp.op != respBatch || len(resp.batch) != len(items)) {
		err = protoErrf("batch reply op %d carries %d statuses for %d entries",
			resp.op, len(resp.batch), len(items))
	}
	if err != nil {
		for _, it := range items {
			it.cl.complete(response{}, err)
		}
		return
	}
	for i, st := range resp.batch {
		if st.code == 0 {
			items[i].cl.complete(response{op: respOK}, nil)
		} else {
			e := wireError(response{op: respErr, code: st.code, message: st.msg}, "put", items[i].space, 0)
			items[i].cl.complete(response{}, e)
		}
	}
}

// Client is a pool of connections to one stingd fabric server. It is safe
// for concurrent use from many STING threads (and from plain goroutines —
// pass a nil context and waits fall back to channels). Concurrent callers
// pipeline over each connection: every request carries an id, the server
// answers in completion order, and the reader call-back demultiplexes —
// a parked blocking Get never head-of-line-blocks later ops. A thread
// waiting for a response parks through the substrate's block/wakeup
// machinery; the reader goroutine completes the call and wakes the TCB,
// mirroring how sio device completions resume their initiators.
type Client struct {
	addr string
	cfg  DialConfig

	closed atomic.Bool
	wg     sync.WaitGroup // in-flight non-blocking ops, for Close's drain
	rr     atomic.Uint64  // round-robin cursor for unkeyable ops

	conns   []*clientConn
	metrics *clientMetrics
}

// clientConn is one pooled connection: its own socket, negotiated
// version, id space, pending-call table, and (when batching) flusher.
type clientConn struct {
	c   *Client
	idx int

	mu      sync.Mutex
	fc      *sio.FrameConn
	version byte // protocol version negotiated for the current connection
	pending map[uint32]*call
	nextID  uint32

	bat *batcher // non-nil when cfg.Batch
}

// Dial connects to a fabric server, retrying transient connect/handshake
// failures with exponential backoff, and verifies protocol agreement via
// the HELLO exchange before returning. Pass a nil ctx when dialing from
// plain Go; from a STING thread the retry sleeps and the handshake wait
// park through the substrate. With cfg.Conns > 1 only the first pool
// connection is established here; the rest dial on first use.
func Dial(ctx *core.Context, addr string, cfg DialConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	c := &Client{addr: addr, cfg: cfg, metrics: newClientMetrics()}
	c.conns = make([]*clientConn, cfg.Conns)
	for i := range c.conns {
		cc := &clientConn{c: c, idx: i, pending: make(map[uint32]*call)}
		if cfg.Batch {
			cc.bat = newBatcher(cc)
		}
		c.conns[i] = cc
	}
	cc := c.conns[0]
	cc.mu.Lock()
	err := cc.redialLocked(ctx)
	cc.mu.Unlock()
	if err != nil {
		c.closed.Store(true)
		for _, cc := range c.conns {
			if cc.bat != nil {
				cc.bat.stop()
			}
		}
		return nil, err
	}
	return c, nil
}

// redialLocked (cc.mu held) establishes a fresh connection with bounded
// retry and the HELLO handshake, then announces the pool size (≥4 peers).
func (cc *clientConn) redialLocked(ctx *core.Context) error {
	c := cc.c
	t0 := time.Now()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.DialRetries; attempt++ {
		if attempt > 0 {
			c.metrics.dialRetries.Add(1)
			sleep(ctx, c.cfg.backoff(attempt-1))
		}
		if c.closed.Load() {
			return net.ErrClosed
		}
		nc, err := net.DialTimeout("tcp", c.addr, c.cfg.Timeout)
		if err != nil {
			lastErr = err
			continue
		}
		fc := sio.NewFrameConn(nc, maxFrame, c.cfg.WriteTimeout)
		v, err := c.handshake(ctx, fc)
		if err != nil {
			fc.Close()
			lastErr = err
			continue
		}
		if v >= 4 {
			// Fire-and-forget capability note; feeds the server's
			// sting_remote_conn_pool_size gauge.
			if frame, err := encodeRequest(request{op: opAnnounce, poolSize: uint32(len(c.conns))}); err == nil {
				fc.WriteFrame(frame) //nolint:errcheck
			}
		}
		cc.fc = fc
		cc.version = v
		fc.StartPooled(func(frame []byte, err error) { cc.onFrame(fc, frame, err) })
		c.metrics.dialLatency.ObserveSince(t0)
		return nil
	}
	c.metrics.dialFails.Add(1)
	return fmt.Errorf("remote: dial %s: %w", c.addr, lastErr)
}

// helloResult carries the handshake outcome: the version the server
// negotiated (min of both sides) or the error.
type helloResult struct {
	version byte
	err     error
}

// handshake performs the HELLO exchange synchronously on a fresh
// connection (its reader loop is not running yet) and returns the
// negotiated protocol version.
func (c *Client) handshake(ctx *core.Context, fc *sio.FrameConn) (byte, error) {
	frame, err := encodeRequest(request{op: opHello, id: 0, version: c.cfg.MaxVersion})
	if err != nil {
		return 0, err
	}
	if err := fc.WriteFrame(frame); err != nil {
		return 0, err
	}
	done := make(chan helloResult, 1)
	go func() {
		var hdr [4]byte
		buf := make([]byte, 64)
		conn := fc.Conn()
		conn.SetReadDeadline(time.Now().Add(c.cfg.Timeout)) //nolint:errcheck
		defer conn.SetReadDeadline(time.Time{})             //nolint:errcheck
		if _, err := readFull(conn, hdr[:]); err != nil {
			done <- helloResult{err: err}
			return
		}
		n := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
		if n > uint32(len(buf)) {
			done <- helloResult{err: protoErrf("hello reply of %d bytes", n)}
			return
		}
		if _, err := readFull(conn, buf[:n]); err != nil {
			done <- helloResult{err: err}
			return
		}
		r, err := decodeResponse(buf[:n])
		if err != nil {
			done <- helloResult{err: err}
			return
		}
		if r.op == respErr {
			done <- helloResult{err: wireError(r, "hello", "", 0)}
			return
		}
		if r.op != respOK {
			done <- helloResult{err: protoErrf("hello reply op %d", r.op)}
			return
		}
		done <- helloResult{version: r.version}
	}()
	if ctx == nil {
		res := <-done
		return res.version, res.err
	}
	// From a STING thread: park through the substrate while the helper
	// goroutine blocks on the socket.
	var res helloResult
	got := false
	var mu sync.Mutex
	tcb := ctx.TCB()
	go func() {
		r := <-done
		mu.Lock()
		res, got = r, true
		mu.Unlock()
		core.WakeTCB(tcb)
	}()
	ctx.BlockUntil(func() bool { mu.Lock(); defer mu.Unlock(); return got })
	return res.version, res.err
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// onFrame is the reader call-back: route responses to pending calls; on
// the terminal error fail every in-flight call with ErrDisconnected. The
// frame is pooled (StartPooled) — decodeResponse deep-copies everything
// it retains.
func (cc *clientConn) onFrame(fc *sio.FrameConn, frame []byte, err error) {
	if err != nil {
		cc.fail(fc, ErrDisconnected)
		return
	}
	r, derr := decodeResponse(frame)
	if derr != nil {
		cc.fail(fc, derr)
		return
	}
	cc.mu.Lock()
	cl := cc.pending[r.id]
	delete(cc.pending, r.id)
	cc.mu.Unlock()
	if cl != nil {
		cl.complete(r, nil)
	}
}

// fail tears down fc (if still current) and fails its in-flight calls.
func (cc *clientConn) fail(fc *sio.FrameConn, reason error) {
	fc.Close()
	cc.mu.Lock()
	if cc.fc != fc {
		cc.mu.Unlock()
		return
	}
	cc.fc = nil
	calls := cc.pending
	cc.pending = make(map[uint32]*call)
	cc.mu.Unlock()
	for _, cl := range calls {
		cl.complete(response{}, reason)
	}
}

// close (terminal) fails whatever is still pending with ErrClientClosed
// and hangs the socket up.
func (cc *clientConn) close() {
	cc.mu.Lock()
	fc := cc.fc
	cc.fc = nil
	calls := cc.pending
	cc.pending = make(map[uint32]*call)
	cc.mu.Unlock()
	for _, cl := range calls {
		cl.complete(response{}, ErrClientClosed)
	}
	if fc != nil {
		fc.Close()
	}
}

// Close drains and hangs up: queued batches are flushed, in-flight
// non-blocking ops get up to DrainTimeout to complete, and everything
// still pending after that — above all parked blocking Gets, which could
// otherwise wait forever — fails promptly with ErrClientClosed. Ops
// started after Close return net.ErrClosed.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, cc := range c.conns {
		if cc.bat != nil {
			cc.bat.stop() // drains the queue through a final flush
		}
	}
	drained := make(chan struct{})
	go func() { c.wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(c.cfg.DrainTimeout):
	}
	for _, cc := range c.conns {
		cc.close()
	}
	return nil
}

// sleep pauses for d: through the substrate when on a STING thread, via
// the runtime otherwise.
func sleep(ctx *core.Context, d time.Duration) {
	if ctx == nil {
		time.Sleep(d)
		return
	}
	ctx.BlockUntilDeadline(func() bool { return false }, time.Now().Add(d))
}

// roundTrip sends req and waits for its response. A request whose frame
// was provably never written is retried (bounded, with backoff); once the
// frame may have left, the op is never re-sent. A non-nil tok arms
// client-initiated cancellation: firing it sends a CANCEL frame for the
// in-flight request id on the same connection, and the server answers the
// op with codeCanceled.
//
// A caller on a traced STING thread gets a client span covering the whole
// exchange (retries included); its id travels in the trace-context
// extension, so the server half of the operation parents under it.
func (c *Client) roundTrip(ctx *core.Context, req request, wait time.Duration, tok *tspace.CancelToken) (response, error) {
	var span *obs.Span
	if ctx != nil {
		if sc := ctx.SpanContext(); sc.Valid() {
			if span = obs.StartSpan(sc, "client/"+opName(req.op), obs.SpanClient); span != nil {
				span.SetAttr("space", req.space)
				span.SetAttr("addr", c.addr)
				pctx := span.Context()
				req.trace, req.parentSpan = pctx.Trace, pctx.Span
			}
		}
	}
	resp, err := c.roundTripRetry(ctx, req, wait, tok, span)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	return resp, err
}

// roundTripRetry is roundTrip's attempt loop.
func (c *Client) roundTripRetry(ctx *core.Context, req request, wait time.Duration, tok *tspace.CancelToken, span *obs.Span) (response, error) {
	if !blockingOp(req.op) {
		// Blocking ops stay out of the drain group: Close fails them
		// with ErrClientClosed instead of waiting out their park.
		c.wg.Add(1)
		defer c.wg.Done()
	}
	t0 := time.Now()
	// A blocking op's deadline is absolute: once it passes, no redial can
	// still satisfy the op, so expiry is terminal — a timeout, not a
	// transport error to burn dial retries on.
	var expiry time.Time
	if blockingOp(req.op) && req.deadline > 0 {
		expiry = t0.Add(req.deadline)
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.OpRetries; attempt++ {
		if attempt > 0 {
			c.metrics.opRetries.Add(1)
			span.Event("retry")
			sleep(ctx, c.cfg.backoff(attempt-1))
		}
		if !expiry.IsZero() && !time.Now().Before(expiry) {
			c.metrics.timeouts.Add(1)
			return response{}, &TimeoutError{Op: opName(req.op), Space: req.space, Deadline: req.deadline}
		}
		if tok != nil && tok.Canceled() {
			return response{}, ErrCanceled
		}
		cc := c.pick(req)
		cl, id, fc, ver, err := cc.register(ctx)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return response{}, err
			}
			lastErr = err
			continue // dial failed; transient
		}
		req.id = id
		// Version gates are per attempt: a redial may land on an older
		// server. An op the peer predates cannot be sent at all — an old
		// decoder treats the unknown op as a protocol error and closes
		// the connection — so minVer misses fail rather than degrade.
		if req.minVer > 0 && ver < req.minVer {
			cc.unregister(id)
			return response{}, fmt.Errorf("%w: %s needs protocol version %d, server speaks %d",
				ErrUnsupported, opName(req.op), req.minVer, ver)
		}
		// The trace-context extension needs a version-2 peer.
		req.hasTrace = req.parentSpan != 0 && ver >= 2
		buf := sio.GetBuf()[:sio.PrefixLen]
		frame, err := appendRequest(buf, req)
		if err != nil {
			cc.unregister(id)
			sio.PutBuf(buf)
			return response{}, err
		}
		werr := fc.WriteFramePrefixed(frame)
		sio.PutBuf(frame)
		if werr != nil {
			cc.unregister(id)
			if errors.Is(werr, net.ErrClosed) {
				// The frame never hit the socket; safe to retry on a
				// fresh connection.
				lastErr = werr
				continue
			}
			// A partial write still cannot execute server-side (the frame
			// is length-prefixed and incomplete), but the connection is
			// now poisoned mid-stream: fail it and retry.
			cc.fail(fc, ErrDisconnected)
			lastErr = werr
			continue
		}
		if tok != nil {
			// Register after the frame is written so the CANCEL always
			// trails its target on the stream (ahead-of-target cancels on
			// fresh connections still resolve via the server's precanceled
			// set). The wait below still runs to the server's authoritative
			// reply: a cancel that loses the race yields a real tuple the
			// caller must dispose of, not a silently dropped one.
			target := id
			tok.Watch(func(error) { cc.sendCancel(target) })
		}
		resp, err := c.wait(ctx, cl, req, wait, func() { cc.unregister(id) })
		switch {
		case err == nil:
			c.metrics.observeOp(req.op, time.Since(t0))
		case errors.Is(err, ErrTimeout):
			c.metrics.timeouts.Add(1)
		}
		return resp, err
	}
	return response{}, fmt.Errorf("remote: %s on %q: retries exhausted: %w",
		opName(req.op), req.space, lastErr)
}

// pick shards req onto a pool connection: keyed ops hash space+first
// field (so a tuple and the template that awaits it meet on one conn's
// cancel/redial domain), unkeyable ops round-robin, and control ops
// (HELLO, STATS, TXNCOMMIT, …) ride the first connection.
func (c *Client) pick(req request) *clientConn {
	if len(c.conns) == 1 {
		return c.conns[0]
	}
	switch req.op {
	case opPut:
		return c.pickKeyed(req.space, req.tuple)
	case opGet, opRd, opTryGet, opTryRd:
		return c.pickKeyed(req.space, []core.Value(req.template))
	default:
		return c.conns[0]
	}
}

func (c *Client) pickKeyed(space string, fields []core.Value) *clientConn {
	var first core.Value
	if len(fields) > 0 {
		first = fields[0]
	}
	if h, ok := tspace.HashKey(space, first, len(fields)); ok {
		return c.conns[h%uint64(len(c.conns))]
	}
	return c.conns[c.rr.Add(1)%uint64(len(c.conns))]
}

// sendCancel asks the server to withdraw the blocking op with the given
// request id. Fire-and-forget: when the connection is gone the waiter
// dies with it server-side anyway.
func (cc *clientConn) sendCancel(target uint32) {
	cc.mu.Lock()
	fc := cc.fc
	cc.mu.Unlock()
	if fc == nil {
		return
	}
	frame, err := encodeRequest(request{op: opCancel, target: target})
	if err != nil {
		return
	}
	fc.WriteFrame(frame) //nolint:errcheck
}

// ensure returns the connection's negotiated version, dialing first if
// needed. During Close a live connection keeps serving (the drain), but
// no new dial starts.
func (cc *clientConn) ensure(ctx *core.Context) (byte, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.fc == nil {
		if cc.c.closed.Load() {
			return 0, net.ErrClosed
		}
		if err := cc.redialLocked(ctx); err != nil {
			return 0, err
		}
	}
	return cc.version, nil
}

// register allocates a request id and pending call on a live connection,
// redialing if the previous one died. It also reports the connection's
// negotiated protocol version, which gates versioned ops and extensions.
func (cc *clientConn) register(ctx *core.Context) (*call, uint32, *sio.FrameConn, byte, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.fc == nil {
		if cc.c.closed.Load() {
			return nil, 0, nil, 0, net.ErrClosed
		}
		if err := cc.redialLocked(ctx); err != nil {
			return nil, 0, nil, 0, err
		}
	}
	cc.nextID++
	if cc.nextID == 0 {
		cc.nextID = 1
	}
	id := cc.nextID
	cl := newCall()
	cc.pending[id] = cl
	return cl, id, cc.fc, cc.version, nil
}

func (cc *clientConn) unregister(id uint32) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// deadlineGrace is how much longer than the server-side deadline the
// client waits before giving up locally: the server is authoritative for
// blocking-op timeouts, the local timer only covers a vanished reply.
const deadlineGrace = 250 * time.Millisecond

// wait parks until cl completes or the local deadline passes (invoking
// onTimeout, when set, so the caller can unregister).
func (c *Client) wait(ctx *core.Context, cl *call, req request, wait time.Duration, onTimeout func()) (response, error) {
	timedOut := func() (response, error) {
		if onTimeout != nil {
			onTimeout()
		}
		return response{}, &TimeoutError{Op: opName(req.op), Space: req.space, Deadline: req.deadline}
	}
	var deadline time.Time
	if wait > 0 {
		deadline = time.Now().Add(wait)
	}
	if ctx != nil {
		cl.mu.Lock()
		cl.tcb = ctx.TCB()
		done := cl.done
		cl.mu.Unlock()
		if !done {
			if deadline.IsZero() {
				ctx.BlockUntil(cl.completed)
			} else if !ctx.BlockUntilDeadline(cl.completed, deadline) {
				return timedOut()
			}
		}
	} else if deadline.IsZero() {
		<-cl.ch
	} else {
		select {
		case <-cl.ch:
		case <-time.After(time.Until(deadline)):
			return timedOut()
		}
	}
	cl.mu.Lock()
	resp, err := cl.resp, cl.err
	cl.mu.Unlock()
	if err != nil {
		return response{}, err
	}
	if resp.op == respErr {
		return response{}, wireError(resp, opName(req.op), req.space, req.deadline)
	}
	return resp, nil
}

// waitFor picks the local wait bound for req: blocking ops wait out the
// server-side deadline plus grace (or forever when unbounded); everything
// else uses the client's round-trip timeout.
func (c *Client) waitFor(req request) time.Duration {
	if blockingOp(req.op) {
		if req.deadline > 0 {
			return req.deadline + deadlineGrace
		}
		return 0
	}
	return c.cfg.Timeout
}

// batcher is a connection's Put coalescer: enqueue appends to the open
// batch, a dedicated flusher goroutine writes whatever accumulated while
// the previous frame was in flight (group commit / flush-on-turnaround),
// capped at maxBatchOps entries per frame (flush-on-size).
type batcher struct {
	cc      *clientConn
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []batchItem
	stopped bool
	done    chan struct{}
}

// batchItem is one queued Put and the call its enqueuer waits on.
type batchItem struct {
	space string
	tuple tspace.Tuple
	cl    *call
}

func newBatcher(cc *clientConn) *batcher {
	b := &batcher{cc: cc, done: make(chan struct{})}
	b.cond = sync.NewCond(&b.mu)
	go b.run()
	return b
}

// enqueue adds one Put to the open batch and returns the call that will
// carry its per-entry status.
func (b *batcher) enqueue(space string, tup tspace.Tuple) (*call, error) {
	cl := newCall()
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return nil, net.ErrClosed
	}
	b.queue = append(b.queue, batchItem{space: space, tuple: tup, cl: cl})
	b.mu.Unlock()
	b.cond.Signal()
	return cl, nil
}

// stop flushes the remaining queue and joins the flusher.
func (b *batcher) stop() {
	b.mu.Lock()
	b.stopped = true
	b.mu.Unlock()
	b.cond.Broadcast()
	<-b.done
}

func (b *batcher) run() {
	defer close(b.done)
	for {
		b.mu.Lock()
		for len(b.queue) == 0 && !b.stopped {
			b.cond.Wait()
		}
		if len(b.queue) == 0 {
			b.mu.Unlock()
			return // stopped and drained
		}
		// Group-commit turnaround: before cutting the batch, yield the
		// scheduler once per growth step so enqueuers that are already
		// runnable can join this flush. No timed delay — the moment the
		// queue stops growing (or fills a frame) the batch goes out, so a
		// lone Put is never parked behind a timer.
		for prev := 0; len(b.queue) > prev && len(b.queue) < maxBatchOps && !b.stopped; {
			prev = len(b.queue)
			b.mu.Unlock()
			runtime.Gosched()
			b.mu.Lock()
		}
		n := min(len(b.queue), maxBatchOps)
		items := make([]batchItem, n)
		copy(items, b.queue)
		rest := copy(b.queue, b.queue[n:])
		clear(b.queue[rest:])
		b.queue = b.queue[:rest]
		b.mu.Unlock()
		b.flush(items)
	}
}

// flush writes one BATCH frame carrying items. Entries whose frame
// provably never reached the socket fail with errBatchUnwritten (their
// Put wrapper retries); entries on an old peer fail with
// errBatchFallback (their Put re-sends per-op).
func (b *batcher) flush(items []batchItem) {
	cc := b.cc
	failItems := func(err error) {
		for _, it := range items {
			it.cl.complete(response{}, err)
		}
	}
	cl, id, fc, ver, err := cc.register(nil)
	if err != nil {
		if !errors.Is(err, net.ErrClosed) {
			err = errBatchUnwritten // dial failure: provably unwritten
		}
		failItems(err)
		return
	}
	if ver < 4 {
		cc.unregister(id)
		failItems(errBatchFallback)
		return
	}
	entries := make([]batchEntry, len(items))
	for i, it := range items {
		entries[i] = batchEntry{space: it.space, tuple: it.tuple}
	}
	cl.subs = items
	buf := sio.GetBuf()[:sio.PrefixLen]
	frame, err := appendRequest(buf, request{op: opBatch, id: id, batch: entries})
	if err != nil {
		cc.unregister(id)
		sio.PutBuf(buf)
		failItems(err) // unencodable tuple: terminal
		return
	}
	werr := fc.WriteFramePrefixed(frame)
	sio.PutBuf(frame)
	if werr != nil {
		cc.unregister(id)
		switch {
		case errors.Is(werr, sio.ErrFrameTooLarge) && len(items) > 1:
			// Entries fit individually but not together: split and retry.
			mid := len(items) / 2
			b.flush(items[:mid])
			b.flush(items[mid:])
		case errors.Is(werr, sio.ErrFrameTooLarge):
			failItems(werr)
		case errors.Is(werr, net.ErrClosed):
			failItems(errBatchUnwritten)
		default:
			cc.fail(fc, ErrDisconnected)
			failItems(errBatchUnwritten)
		}
		return
	}
	cc.c.metrics.batchFlushes.Add(1)
	cc.c.metrics.batchedPuts.Add(uint64(len(items)))
}

// batchPut routes one Put through the connection's batcher, retrying
// (bounded) entries whose frame provably never left. errBatchFallback
// tells the caller to use the per-op path instead.
func (c *Client) batchPut(ctx *core.Context, space string, tup tspace.Tuple) error {
	c.wg.Add(1)
	defer c.wg.Done()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.OpRetries; attempt++ {
		if attempt > 0 {
			c.metrics.opRetries.Add(1)
			sleep(ctx, c.cfg.backoff(attempt-1))
		}
		cc := c.pickKeyed(space, tup)
		ver, err := cc.ensure(ctx)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			lastErr = err
			continue
		}
		if ver < 4 {
			return errBatchFallback
		}
		cl, err := cc.bat.enqueue(space, tup)
		if err != nil {
			return err
		}
		t0 := time.Now()
		resp, err := c.wait(ctx, cl, request{op: opPut, space: space}, c.cfg.Timeout, nil)
		switch {
		case err == nil:
			if resp.op != respOK {
				return protoErrf("put reply op %d", resp.op)
			}
			c.metrics.observeOp(opPut, time.Since(t0))
			return nil
		case errors.Is(err, errBatchUnwritten):
			lastErr = err
			continue
		case errors.Is(err, errBatchFallback):
			return errBatchFallback
		case errors.Is(err, ErrTimeout):
			c.metrics.timeouts.Add(1)
			return err
		default:
			return err
		}
	}
	return fmt.Errorf("remote: put on %q: retries exhausted: %w", space, lastErr)
}

// Stats fetches the server's counter snapshot via the STATS wire op.
func (c *Client) Stats(ctx *core.Context) (StatsSnapshot, error) {
	req := request{op: opStats}
	resp, err := c.roundTrip(ctx, req, c.cfg.Timeout, nil)
	if err != nil {
		return StatsSnapshot{}, err
	}
	if resp.op != respStats {
		return StatsSnapshot{}, protoErrf("stats reply op %d", resp.op)
	}
	return resp.stats, nil
}

// Ping performs one HELLO round trip — the liveness probe cluster health
// checking runs against each shard.
func (c *Client) Ping(ctx *core.Context) error {
	resp, err := c.roundTrip(ctx, request{op: opHello, version: c.cfg.MaxVersion}, c.cfg.Timeout, nil)
	if err != nil {
		return err
	}
	if resp.op != respOK {
		return protoErrf("hello reply op %d", resp.op)
	}
	return nil
}

// Addr returns the server address this client dials.
func (c *Client) Addr() string { return c.addr }

// Space returns a handle on the named tuple space. The handle implements
// tspace.TupleSpace, so remote spaces drop into every consumer of the
// local interface (Spawn excepted: thunks do not cross address spaces).
func (c *Client) Space(name string) *Space {
	return &Space{c: c, name: name}
}

// Space is a client-side handle on one named remote tuple space.
type Space struct {
	c        *Client
	name     string
	deadline time.Duration
}

var _ tspace.TupleSpace = (*Space)(nil)

// Deadline returns a derived handle whose blocking Get/Rd carry the given
// per-op deadline; the server expires the wait and replies with a timeout
// error that surfaces as a *TimeoutError.
func (s *Space) Deadline(d time.Duration) *Space {
	return &Space{c: s.c, name: s.name, deadline: d}
}

// Name returns the space's registry name.
func (s *Space) Name() string { return s.name }

// Put deposits a tuple in the remote space. With cfg.Batch it rides the
// connection's batcher (one BATCH frame per flush turnaround); against an
// older peer — or with batching off — one PUT frame per call.
func (s *Space) Put(ctx *core.Context, tup tspace.Tuple) error {
	if s.c.cfg.Batch {
		err := s.c.batchPut(ctx, s.name, tup)
		if !errors.Is(err, errBatchFallback) {
			return err
		}
	}
	req := request{op: opPut, space: s.name, tuple: tup}
	resp, err := s.c.roundTrip(ctx, req, s.c.waitFor(req), nil)
	if err != nil {
		return err
	}
	if resp.op != respOK {
		return protoErrf("put reply op %d", resp.op)
	}
	return nil
}

// PendingPut is an in-flight asynchronous Put started by PutAsync.
type PendingPut struct {
	c     *Client
	cl    *call
	space string
}

// PutAsync deposits a tuple without waiting for the acknowledgement:
// the frame is written (or enqueued on the batcher) and a handle is
// returned whose Wait reports the outcome. Unlike Put, an async put is
// never retried — its frame may already be on the wire when an error
// surfaces — and Wait must be called before Close for a guaranteed
// flush. This is the window-of-N idiom the saturation benchmark drives:
// many puts in flight on one connection, completions out of order.
func (s *Space) PutAsync(ctx *core.Context, tup tspace.Tuple) (*PendingPut, error) {
	c := s.c
	cc := c.pickKeyed(s.name, tup)
	if c.cfg.Batch {
		ver, err := cc.ensure(ctx)
		if err != nil {
			return nil, err
		}
		if ver >= 4 {
			cl, err := cc.bat.enqueue(s.name, tup)
			if err != nil {
				return nil, err
			}
			return &PendingPut{c: c, cl: cl, space: s.name}, nil
		}
	}
	cl, id, fc, _, err := cc.register(ctx)
	if err != nil {
		return nil, err
	}
	buf := sio.GetBuf()[:sio.PrefixLen]
	frame, err := appendRequest(buf, request{op: opPut, id: id, space: s.name, tuple: tup})
	if err != nil {
		cc.unregister(id)
		sio.PutBuf(buf)
		return nil, err
	}
	werr := fc.WriteFramePrefixed(frame)
	sio.PutBuf(frame)
	if werr != nil {
		cc.unregister(id)
		if !errors.Is(werr, net.ErrClosed) && !errors.Is(werr, sio.ErrFrameTooLarge) {
			cc.fail(fc, ErrDisconnected)
		}
		return nil, werr
	}
	return &PendingPut{c: c, cl: cl, space: s.name}, nil
}

// Wait blocks until the put is acknowledged (bounded by the client's
// round-trip timeout, measured from Wait).
func (p *PendingPut) Wait(ctx *core.Context) error {
	resp, err := p.c.wait(ctx, p.cl, request{op: opPut, space: p.space}, p.c.cfg.Timeout, nil)
	if err != nil {
		if errors.Is(err, errBatchUnwritten) || errors.Is(err, errBatchFallback) {
			return ErrDisconnected // async puts are not retried
		}
		return err
	}
	if resp.op != respOK {
		return protoErrf("put reply op %d", resp.op)
	}
	return nil
}

func (s *Space) match(ctx *core.Context, op byte, tpl tspace.Template) (tspace.Tuple, tspace.Bindings, error) {
	return s.matchTok(ctx, op, tpl, nil)
}

// matchTok runs one matching op, optionally governed by a cancel token.
func (s *Space) matchTok(ctx *core.Context, op byte, tpl tspace.Template, tok *tspace.CancelToken) (tspace.Tuple, tspace.Bindings, error) {
	req := request{op: op, space: s.name, template: tpl}
	if blockingOp(op) {
		req.deadline = s.deadline
	}
	resp, err := s.c.roundTrip(ctx, req, s.c.waitFor(req), tok)
	if err != nil {
		return nil, nil, err
	}
	switch resp.op {
	case respTuple:
		return resp.tuple, resp.bind, nil
	case respNoMatch:
		return nil, nil, tspace.ErrNoMatch
	default:
		return nil, nil, protoErrf("%s reply op %d", opName(op), resp.op)
	}
}

// Get removes a matching tuple, blocking (parked server-side as a STING
// thread, parked client-side through BlockUntil) until one exists.
func (s *Space) Get(ctx *core.Context, tpl tspace.Template) (tspace.Tuple, tspace.Bindings, error) {
	return s.match(ctx, opGet, tpl)
}

// Rd reads a matching tuple without removing it, blocking until one exists.
func (s *Space) Rd(ctx *core.Context, tpl tspace.Template) (tspace.Tuple, tspace.Bindings, error) {
	return s.match(ctx, opRd, tpl)
}

// GetCancel is Get governed by tok: firing the token sends a CANCEL frame
// that withdraws the server-side waiter, and the call returns ErrCanceled.
// A cancel that loses the race to a match still returns the tuple — the
// caller owns it and must dispose of it (the cluster fan-out re-deposits).
func (s *Space) GetCancel(ctx *core.Context, tpl tspace.Template, tok *tspace.CancelToken) (tspace.Tuple, tspace.Bindings, error) {
	return s.matchTok(ctx, opGet, tpl, tok)
}

// RdCancel is Rd governed by tok, with GetCancel's semantics (minus
// disposal: a read removes nothing).
func (s *Space) RdCancel(ctx *core.Context, tpl tspace.Template, tok *tspace.CancelToken) (tspace.Tuple, tspace.Bindings, error) {
	return s.matchTok(ctx, opRd, tpl, tok)
}

// TryGet is the non-blocking Get probe.
func (s *Space) TryGet(ctx *core.Context, tpl tspace.Template) (tspace.Tuple, tspace.Bindings, error) {
	return s.match(ctx, opTryGet, tpl)
}

// TryRd is the non-blocking Rd probe.
func (s *Space) TryRd(ctx *core.Context, tpl tspace.Template) (tspace.Tuple, tspace.Bindings, error) {
	return s.match(ctx, opTryRd, tpl)
}

// Spawn is unsupported on remote spaces: thunks are process-local.
func (s *Space) Spawn(ctx *core.Context, thunks ...core.Thunk) ([]*core.Thread, error) {
	return nil, ErrUnsupported
}

var _ tspace.RemoteTxn = (*Space)(nil)

// TxnDomain identifies the commit authority behind this handle: the
// client. Every space reached through one client lands on one server, so
// a transaction touching several of them still commits in a single
// TXNCOMMIT frame; spaces from different clients cannot (no 2PC).
func (s *Space) TxnDomain() any { return s.c }

// TxnSpaceName returns the registry name commit-log ops should carry.
func (s *Space) TxnSpaceName() string { return s.name }

// CommitTxn forwards the buffered commit log to the server.
func (s *Space) CommitTxn(ctx *core.Context, ops []tspace.TxnOp) error {
	return s.c.CommitTxn(ctx, ops)
}

// CommitTxn ships a transaction's buffered log in one TXNCOMMIT frame for
// atomic server-side validation and apply. A validation failure surfaces
// as a *tspace.ConflictError, telling the caller to re-run the body. The
// op needs a version-3 server; older peers yield ErrUnsupported.
//
// Like Put, TXNCOMMIT is not idempotent: it is retried only while the
// frame provably never reached the socket.
func (c *Client) CommitTxn(ctx *core.Context, ops []tspace.TxnOp) error {
	if len(ops) == 0 {
		return nil
	}
	req := request{op: opTxnCommit, space: ops[0].Space, txnOps: ops, minVer: 3}
	resp, err := c.roundTrip(ctx, req, c.waitFor(req), nil)
	if err != nil {
		return err
	}
	if resp.op != respOK {
		return protoErrf("txncommit reply op %d", resp.op)
	}
	return nil
}

// Len reports the remote space's depth (0 when the server is unreachable:
// the TupleSpace interface leaves no room for an error).
func (s *Space) Len() int {
	req := request{op: opLen, space: s.name}
	resp, err := s.c.roundTrip(nil, req, s.c.cfg.Timeout, nil)
	if err != nil || resp.op != respLen {
		return 0
	}
	return int(resp.length)
}

// Kind reports KindRemote.
func (s *Space) Kind() tspace.Kind { return tspace.KindRemote }
