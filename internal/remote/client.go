package remote

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sio"
	"repro/internal/tspace"
)

// DialConfig tunes the client's retry, deadline, and drain behaviour.
// The zero value is usable; every field has a default.
type DialConfig struct {
	// DialRetries bounds how many times Dial (and a mid-session redial)
	// re-attempts the connect+HELLO exchange after a transient failure
	// (default 4, so 5 attempts total).
	DialRetries int
	// BaseBackoff is the first retry's sleep; each further attempt doubles
	// it up to MaxBackoff (defaults 25ms, 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OpRetries bounds how many times an operation is re-sent when its
	// request frame was provably never written (default 2). An op whose
	// frame may have reached the server is never retried — a second Put
	// must not double-deposit.
	OpRetries int
	// Timeout bounds non-blocking round trips (TryGet, Len, Stats, Put)
	// and the HELLO exchange (default 5s). Blocking Get/Rd are bounded by
	// their per-op deadline, enforced server-side.
	Timeout time.Duration
	// WriteTimeout bounds one frame write (default 10s).
	WriteTimeout time.Duration
	// DrainTimeout bounds how long Close waits for in-flight operations
	// to complete before hanging up (default 5s).
	DrainTimeout time.Duration
}

func (cfg DialConfig) withDefaults() DialConfig {
	if cfg.DialRetries == 0 {
		cfg.DialRetries = 4
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.OpRetries == 0 {
		cfg.OpRetries = 2
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	return cfg
}

// backoff returns the sleep before retry attempt (0-based), exponential
// and capped.
func (cfg DialConfig) backoff(attempt int) time.Duration {
	d := cfg.BaseBackoff
	for i := 0; i < attempt && d < cfg.MaxBackoff; i++ {
		d *= 2
	}
	return min(d, cfg.MaxBackoff)
}

// call is one in-flight request awaiting its response frame.
type call struct {
	mu   sync.Mutex
	done bool
	resp response
	err  error
	ch   chan struct{}
	tcb  *core.TCB // parked STING waiter to wake, when set
}

func newCall() *call { return &call{ch: make(chan struct{})} }

func (c *call) complete(resp response, err error) {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return
	}
	c.done = true
	c.resp, c.err = resp, err
	tcb := c.tcb
	c.mu.Unlock()
	close(c.ch)
	if tcb != nil {
		core.WakeTCB(tcb)
	}
}

func (c *call) completed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// Client is one connection to a stingd fabric server. It is safe for
// concurrent use from many STING threads (and from plain goroutines —
// pass a nil context and waits fall back to channels). A thread waiting
// for a response parks through the substrate's block/wakeup machinery;
// the reader goroutine completes the call and wakes the TCB, mirroring
// how sio device completions resume their initiators.
type Client struct {
	addr string
	cfg  DialConfig

	mu      sync.Mutex
	fc      *sio.FrameConn
	version byte // protocol version negotiated for the current connection
	pending map[uint32]*call
	nextID  uint32
	closed  bool
	wg      sync.WaitGroup // in-flight roundTrips, for Close's drain

	metrics *clientMetrics
}

// Dial connects to a fabric server, retrying transient connect/handshake
// failures with exponential backoff, and verifies protocol agreement via
// the HELLO exchange before returning. Pass a nil ctx when dialing from
// plain Go; from a STING thread the retry sleeps and the handshake wait
// park through the substrate.
func Dial(ctx *core.Context, addr string, cfg DialConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	c := &Client{
		addr:    addr,
		cfg:     cfg,
		pending: make(map[uint32]*call),
		metrics: newClientMetrics(),
	}
	c.mu.Lock()
	err := c.redialLocked(ctx)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// redialLocked (c.mu held) establishes a fresh connection with bounded
// retry and the HELLO handshake.
func (c *Client) redialLocked(ctx *core.Context) error {
	t0 := time.Now()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.DialRetries; attempt++ {
		if attempt > 0 {
			c.metrics.dialRetries.Add(1)
			sleep(ctx, c.cfg.backoff(attempt-1))
		}
		if c.closed {
			return net.ErrClosed
		}
		nc, err := net.DialTimeout("tcp", c.addr, c.cfg.Timeout)
		if err != nil {
			lastErr = err
			continue
		}
		fc := sio.NewFrameConn(nc, maxFrame, c.cfg.WriteTimeout)
		v, err := c.handshake(ctx, fc)
		if err != nil {
			fc.Close()
			lastErr = err
			continue
		}
		c.fc = fc
		c.version = v
		fc.Start(func(frame []byte, err error) { c.onFrame(fc, frame, err) })
		c.metrics.dialLatency.ObserveSince(t0)
		return nil
	}
	c.metrics.dialFails.Add(1)
	return fmt.Errorf("remote: dial %s: %w", c.addr, lastErr)
}

// helloResult carries the handshake outcome: the version the server
// negotiated (min of both sides) or the error.
type helloResult struct {
	version byte
	err     error
}

// handshake performs the HELLO exchange synchronously on a fresh
// connection (its reader loop is not running yet) and returns the
// negotiated protocol version.
func (c *Client) handshake(ctx *core.Context, fc *sio.FrameConn) (byte, error) {
	frame, err := encodeRequest(request{op: opHello, id: 0})
	if err != nil {
		return 0, err
	}
	if err := fc.WriteFrame(frame); err != nil {
		return 0, err
	}
	done := make(chan helloResult, 1)
	go func() {
		var hdr [4]byte
		buf := make([]byte, 64)
		conn := fc.Conn()
		conn.SetReadDeadline(time.Now().Add(c.cfg.Timeout)) //nolint:errcheck
		defer conn.SetReadDeadline(time.Time{})             //nolint:errcheck
		if _, err := readFull(conn, hdr[:]); err != nil {
			done <- helloResult{err: err}
			return
		}
		n := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
		if n > uint32(len(buf)) {
			done <- helloResult{err: protoErrf("hello reply of %d bytes", n)}
			return
		}
		if _, err := readFull(conn, buf[:n]); err != nil {
			done <- helloResult{err: err}
			return
		}
		r, err := decodeResponse(buf[:n])
		if err != nil {
			done <- helloResult{err: err}
			return
		}
		if r.op == respErr {
			done <- helloResult{err: wireError(r, "hello", "", 0)}
			return
		}
		if r.op != respOK {
			done <- helloResult{err: protoErrf("hello reply op %d", r.op)}
			return
		}
		done <- helloResult{version: r.version}
	}()
	if ctx == nil {
		res := <-done
		return res.version, res.err
	}
	// From a STING thread: park through the substrate while the helper
	// goroutine blocks on the socket.
	var res helloResult
	got := false
	var mu sync.Mutex
	tcb := ctx.TCB()
	go func() {
		r := <-done
		mu.Lock()
		res, got = r, true
		mu.Unlock()
		core.WakeTCB(tcb)
	}()
	ctx.BlockUntil(func() bool { mu.Lock(); defer mu.Unlock(); return got })
	return res.version, res.err
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// onFrame is the reader call-back: route responses to pending calls; on
// the terminal error fail every in-flight call with ErrDisconnected.
func (c *Client) onFrame(fc *sio.FrameConn, frame []byte, err error) {
	if err != nil {
		c.failConn(fc, ErrDisconnected)
		return
	}
	r, derr := decodeResponse(frame)
	if derr != nil {
		c.failConn(fc, derr)
		return
	}
	c.mu.Lock()
	call := c.pending[r.id]
	delete(c.pending, r.id)
	c.mu.Unlock()
	if call != nil {
		call.complete(r, nil)
	}
}

// failConn tears down fc (if still current) and fails its in-flight calls.
func (c *Client) failConn(fc *sio.FrameConn, reason error) {
	fc.Close()
	c.mu.Lock()
	if c.fc != fc {
		c.mu.Unlock()
		return
	}
	c.fc = nil
	calls := c.pending
	c.pending = make(map[uint32]*call)
	c.mu.Unlock()
	for _, cl := range calls {
		cl.complete(response{}, reason)
	}
}

// Close drains in-flight operations (up to DrainTimeout) and hangs up.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	fc := c.fc
	c.mu.Unlock()
	drained := make(chan struct{})
	go func() { c.wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(c.cfg.DrainTimeout):
	}
	if fc != nil {
		c.failConn(fc, net.ErrClosed)
	}
	return nil
}

// sleep pauses for d: through the substrate when on a STING thread, via
// the runtime otherwise.
func sleep(ctx *core.Context, d time.Duration) {
	if ctx == nil {
		time.Sleep(d)
		return
	}
	ctx.BlockUntilDeadline(func() bool { return false }, time.Now().Add(d))
}

// roundTrip sends req and waits for its response. A request whose frame
// was provably never written is retried (bounded, with backoff); once the
// frame may have left, the op is never re-sent. A non-nil tok arms
// client-initiated cancellation: firing it sends a CANCEL frame for the
// in-flight request id, and the server answers the op with codeCanceled.
//
// A caller on a traced STING thread gets a client span covering the whole
// exchange (retries included); its id travels in the trace-context
// extension, so the server half of the operation parents under it.
func (c *Client) roundTrip(ctx *core.Context, req request, wait time.Duration, tok *tspace.CancelToken) (response, error) {
	var span *obs.Span
	if ctx != nil {
		if sc := ctx.SpanContext(); sc.Valid() {
			if span = obs.StartSpan(sc, "client/"+opName(req.op), obs.SpanClient); span != nil {
				span.SetAttr("space", req.space)
				span.SetAttr("addr", c.addr)
				pctx := span.Context()
				req.trace, req.parentSpan = pctx.Trace, pctx.Span
			}
		}
	}
	resp, err := c.roundTripRetry(ctx, req, wait, tok, span)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	return resp, err
}

// roundTripRetry is roundTrip's attempt loop.
func (c *Client) roundTripRetry(ctx *core.Context, req request, wait time.Duration, tok *tspace.CancelToken, span *obs.Span) (response, error) {
	c.wg.Add(1)
	defer c.wg.Done()
	t0 := time.Now()
	// A blocking op's deadline is absolute: once it passes, no redial can
	// still satisfy the op, so expiry is terminal — a timeout, not a
	// transport error to burn dial retries on.
	var expiry time.Time
	if blockingOp(req.op) && req.deadline > 0 {
		expiry = t0.Add(req.deadline)
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.OpRetries; attempt++ {
		if attempt > 0 {
			c.metrics.opRetries.Add(1)
			span.Event("retry")
			sleep(ctx, c.cfg.backoff(attempt-1))
		}
		if !expiry.IsZero() && !time.Now().Before(expiry) {
			c.metrics.timeouts.Add(1)
			return response{}, &TimeoutError{Op: opName(req.op), Space: req.space, Deadline: req.deadline}
		}
		if tok != nil && tok.Canceled() {
			return response{}, ErrCanceled
		}
		cl, id, fc, ver, err := c.register(ctx)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return response{}, err
			}
			lastErr = err
			continue // dial failed; transient
		}
		req.id = id
		// Version gates are per attempt: a redial may land on an older
		// server. An op the peer predates cannot be sent at all — an old
		// decoder treats the unknown op as a protocol error and closes
		// the connection — so minVer misses fail rather than degrade.
		if req.minVer > 0 && ver < req.minVer {
			c.unregister(id)
			return response{}, fmt.Errorf("%w: %s needs protocol version %d, server speaks %d",
				ErrUnsupported, opName(req.op), req.minVer, ver)
		}
		// The trace-context extension needs a version-2 peer.
		req.hasTrace = req.parentSpan != 0 && ver >= 2
		frame, err := encodeRequest(req)
		if err != nil {
			c.unregister(id)
			return response{}, err
		}
		if err := fc.WriteFrame(frame); err != nil {
			c.unregister(id)
			if errors.Is(err, net.ErrClosed) {
				// The frame never hit the socket; safe to retry on a
				// fresh connection.
				lastErr = err
				continue
			}
			// A partial write still cannot execute server-side (the frame
			// is length-prefixed and incomplete), but the connection is
			// now poisoned mid-stream: fail it and retry.
			c.failConn(fc, ErrDisconnected)
			lastErr = err
			continue
		}
		if tok != nil {
			// Register after the frame is written so the CANCEL always
			// trails its target on the stream (ahead-of-target cancels on
			// fresh connections still resolve via the server's precanceled
			// set). The wait below still runs to the server's authoritative
			// reply: a cancel that loses the race yields a real tuple the
			// caller must dispose of, not a silently dropped one.
			target := id
			tok.Watch(func(error) { c.sendCancel(target) })
		}
		resp, err := c.wait(ctx, cl, id, req, wait)
		switch {
		case err == nil:
			c.metrics.observeOp(req.op, time.Since(t0))
		case errors.Is(err, ErrTimeout):
			c.metrics.timeouts.Add(1)
		}
		return resp, err
	}
	return response{}, fmt.Errorf("remote: %s on %q: retries exhausted: %w",
		opName(req.op), req.space, lastErr)
}

// sendCancel asks the server to withdraw the blocking op with the given
// request id. Fire-and-forget: when the connection is gone the waiter
// dies with it server-side anyway.
func (c *Client) sendCancel(target uint32) {
	c.mu.Lock()
	fc := c.fc
	c.mu.Unlock()
	if fc == nil {
		return
	}
	frame, err := encodeRequest(request{op: opCancel, target: target})
	if err != nil {
		return
	}
	fc.WriteFrame(frame) //nolint:errcheck
}

// register allocates a request id and pending call on a live connection,
// redialing if the previous one died. It also reports the connection's
// negotiated protocol version, which gates version-2 extensions.
func (c *Client) register(ctx *core.Context) (*call, uint32, *sio.FrameConn, byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, nil, 0, net.ErrClosed
	}
	if c.fc == nil {
		if err := c.redialLocked(ctx); err != nil {
			return nil, 0, nil, 0, err
		}
	}
	c.nextID++
	if c.nextID == 0 {
		c.nextID = 1
	}
	id := c.nextID
	cl := newCall()
	c.pending[id] = cl
	return cl, id, c.fc, c.version, nil
}

func (c *Client) unregister(id uint32) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// deadlineGrace is how much longer than the server-side deadline the
// client waits before giving up locally: the server is authoritative for
// blocking-op timeouts, the local timer only covers a vanished reply.
const deadlineGrace = 250 * time.Millisecond

// wait parks until cl completes or the local deadline passes.
func (c *Client) wait(ctx *core.Context, cl *call, id uint32, req request, wait time.Duration) (response, error) {
	var deadline time.Time
	if wait > 0 {
		deadline = time.Now().Add(wait)
	}
	if ctx != nil {
		cl.mu.Lock()
		cl.tcb = ctx.TCB()
		done := cl.done
		cl.mu.Unlock()
		if !done {
			if deadline.IsZero() {
				ctx.BlockUntil(cl.completed)
			} else if !ctx.BlockUntilDeadline(cl.completed, deadline) {
				c.unregister(id)
				return response{}, &TimeoutError{Op: opName(req.op), Space: req.space, Deadline: req.deadline}
			}
		}
	} else if deadline.IsZero() {
		<-cl.ch
	} else {
		select {
		case <-cl.ch:
		case <-time.After(time.Until(deadline)):
			c.unregister(id)
			return response{}, &TimeoutError{Op: opName(req.op), Space: req.space, Deadline: req.deadline}
		}
	}
	cl.mu.Lock()
	resp, err := cl.resp, cl.err
	cl.mu.Unlock()
	if err != nil {
		return response{}, err
	}
	if resp.op == respErr {
		return response{}, wireError(resp, opName(req.op), req.space, req.deadline)
	}
	return resp, nil
}

// waitFor picks the local wait bound for req: blocking ops wait out the
// server-side deadline plus grace (or forever when unbounded); everything
// else uses the client's round-trip timeout.
func (c *Client) waitFor(req request) time.Duration {
	if blockingOp(req.op) {
		if req.deadline > 0 {
			return req.deadline + deadlineGrace
		}
		return 0
	}
	return c.cfg.Timeout
}

// Stats fetches the server's counter snapshot via the STATS wire op.
func (c *Client) Stats(ctx *core.Context) (StatsSnapshot, error) {
	req := request{op: opStats}
	resp, err := c.roundTrip(ctx, req, c.cfg.Timeout, nil)
	if err != nil {
		return StatsSnapshot{}, err
	}
	if resp.op != respStats {
		return StatsSnapshot{}, protoErrf("stats reply op %d", resp.op)
	}
	return resp.stats, nil
}

// Ping performs one HELLO round trip — the liveness probe cluster health
// checking runs against each shard.
func (c *Client) Ping(ctx *core.Context) error {
	resp, err := c.roundTrip(ctx, request{op: opHello}, c.cfg.Timeout, nil)
	if err != nil {
		return err
	}
	if resp.op != respOK {
		return protoErrf("hello reply op %d", resp.op)
	}
	return nil
}

// Addr returns the server address this client dials.
func (c *Client) Addr() string { return c.addr }

// Space returns a handle on the named tuple space. The handle implements
// tspace.TupleSpace, so remote spaces drop into every consumer of the
// local interface (Spawn excepted: thunks do not cross address spaces).
func (c *Client) Space(name string) *Space {
	return &Space{c: c, name: name}
}

// Space is a client-side handle on one named remote tuple space.
type Space struct {
	c        *Client
	name     string
	deadline time.Duration
}

var _ tspace.TupleSpace = (*Space)(nil)

// Deadline returns a derived handle whose blocking Get/Rd carry the given
// per-op deadline; the server expires the wait and replies with a timeout
// error that surfaces as a *TimeoutError.
func (s *Space) Deadline(d time.Duration) *Space {
	return &Space{c: s.c, name: s.name, deadline: d}
}

// Name returns the space's registry name.
func (s *Space) Name() string { return s.name }

// Put deposits a tuple in the remote space.
func (s *Space) Put(ctx *core.Context, tup tspace.Tuple) error {
	req := request{op: opPut, space: s.name, tuple: tup}
	resp, err := s.c.roundTrip(ctx, req, s.c.waitFor(req), nil)
	if err != nil {
		return err
	}
	if resp.op != respOK {
		return protoErrf("put reply op %d", resp.op)
	}
	return nil
}

func (s *Space) match(ctx *core.Context, op byte, tpl tspace.Template) (tspace.Tuple, tspace.Bindings, error) {
	return s.matchTok(ctx, op, tpl, nil)
}

// matchTok runs one matching op, optionally governed by a cancel token.
func (s *Space) matchTok(ctx *core.Context, op byte, tpl tspace.Template, tok *tspace.CancelToken) (tspace.Tuple, tspace.Bindings, error) {
	req := request{op: op, space: s.name, template: tpl}
	if blockingOp(op) {
		req.deadline = s.deadline
	}
	resp, err := s.c.roundTrip(ctx, req, s.c.waitFor(req), tok)
	if err != nil {
		return nil, nil, err
	}
	switch resp.op {
	case respTuple:
		return resp.tuple, resp.bind, nil
	case respNoMatch:
		return nil, nil, tspace.ErrNoMatch
	default:
		return nil, nil, protoErrf("%s reply op %d", opName(op), resp.op)
	}
}

// Get removes a matching tuple, blocking (parked server-side as a STING
// thread, parked client-side through BlockUntil) until one exists.
func (s *Space) Get(ctx *core.Context, tpl tspace.Template) (tspace.Tuple, tspace.Bindings, error) {
	return s.match(ctx, opGet, tpl)
}

// Rd reads a matching tuple without removing it, blocking until one exists.
func (s *Space) Rd(ctx *core.Context, tpl tspace.Template) (tspace.Tuple, tspace.Bindings, error) {
	return s.match(ctx, opRd, tpl)
}

// GetCancel is Get governed by tok: firing the token sends a CANCEL frame
// that withdraws the server-side waiter, and the call returns ErrCanceled.
// A cancel that loses the race to a match still returns the tuple — the
// caller owns it and must dispose of it (the cluster fan-out re-deposits).
func (s *Space) GetCancel(ctx *core.Context, tpl tspace.Template, tok *tspace.CancelToken) (tspace.Tuple, tspace.Bindings, error) {
	return s.matchTok(ctx, opGet, tpl, tok)
}

// RdCancel is Rd governed by tok, with GetCancel's semantics (minus
// disposal: a read removes nothing).
func (s *Space) RdCancel(ctx *core.Context, tpl tspace.Template, tok *tspace.CancelToken) (tspace.Tuple, tspace.Bindings, error) {
	return s.matchTok(ctx, opRd, tpl, tok)
}

// TryGet is the non-blocking Get probe.
func (s *Space) TryGet(ctx *core.Context, tpl tspace.Template) (tspace.Tuple, tspace.Bindings, error) {
	return s.match(ctx, opTryGet, tpl)
}

// TryRd is the non-blocking Rd probe.
func (s *Space) TryRd(ctx *core.Context, tpl tspace.Template) (tspace.Tuple, tspace.Bindings, error) {
	return s.match(ctx, opTryRd, tpl)
}

// Spawn is unsupported on remote spaces: thunks are process-local.
func (s *Space) Spawn(ctx *core.Context, thunks ...core.Thunk) ([]*core.Thread, error) {
	return nil, ErrUnsupported
}

var _ tspace.RemoteTxn = (*Space)(nil)

// TxnDomain identifies the commit authority behind this handle: the
// client. Every space reached through one client lands on one server, so
// a transaction touching several of them still commits in a single
// TXNCOMMIT frame; spaces from different clients cannot (no 2PC).
func (s *Space) TxnDomain() any { return s.c }

// TxnSpaceName returns the registry name commit-log ops should carry.
func (s *Space) TxnSpaceName() string { return s.name }

// CommitTxn forwards the buffered commit log to the server.
func (s *Space) CommitTxn(ctx *core.Context, ops []tspace.TxnOp) error {
	return s.c.CommitTxn(ctx, ops)
}

// CommitTxn ships a transaction's buffered log in one TXNCOMMIT frame for
// atomic server-side validation and apply. A validation failure surfaces
// as a *tspace.ConflictError, telling the caller to re-run the body. The
// op needs a version-3 server; older peers yield ErrUnsupported.
//
// Like Put, TXNCOMMIT is not idempotent: it is retried only while the
// frame provably never reached the socket.
func (c *Client) CommitTxn(ctx *core.Context, ops []tspace.TxnOp) error {
	if len(ops) == 0 {
		return nil
	}
	req := request{op: opTxnCommit, space: ops[0].Space, txnOps: ops, minVer: 3}
	resp, err := c.roundTrip(ctx, req, c.waitFor(req), nil)
	if err != nil {
		return err
	}
	if resp.op != respOK {
		return protoErrf("txncommit reply op %d", resp.op)
	}
	return nil
}

// Len reports the remote space's depth (0 when the server is unreachable:
// the TupleSpace interface leaves no room for an error).
func (s *Space) Len() int {
	req := request{op: opLen, space: s.name}
	resp, err := s.c.roundTrip(nil, req, s.c.cfg.Timeout, nil)
	if err != nil || resp.op != respLen {
		return 0
	}
	return int(resp.length)
}

// Kind reports KindRemote.
func (s *Space) Kind() tspace.Kind { return tspace.KindRemote }
