package remote

import (
	"math"
	"testing"
	"time"

	"repro/internal/tspace"
)

// TestStatsCountersRoundTripLatency: the latency digests survive the flat
// counters map that the STATS wire op ships (satellite: extend the STATS
// op with per-op quantiles without breaking the wire format).
func TestStatsCountersRoundTripLatency(t *testing.T) {
	in := StatsSnapshot{
		Ops: map[string]uint64{"put": 7},
		OpLatency: map[string]LatencySummary{
			"put": {Count: 7, P50: 0.000130, P95: 0.000850, P99: 0.002100},
			"get": {Count: 2, P50: 1.5, P95: 2.25, P99: 2.25},
		},
	}
	var out StatsSnapshot
	out.setCounters(in.counters())
	for op, want := range in.OpLatency {
		got, ok := out.OpLatency[op]
		if !ok {
			t.Fatalf("op %q lost in roundtrip", op)
		}
		if got.Count != want.Count {
			t.Errorf("%s count = %d, want %d", op, got.Count, want.Count)
		}
		for _, q := range []struct {
			name      string
			got, want float64
		}{{"p50", got.P50, want.P50}, {"p95", got.P95, want.P95}, {"p99", got.P99, want.P99}} {
			// Quantiles travel as integer nanoseconds; allow that rounding.
			if math.Abs(q.got-q.want) > 1e-9 {
				t.Errorf("%s %s = %v, want %v", op, q.name, q.got, q.want)
			}
		}
	}
	if out.Ops["put"] != 7 {
		t.Errorf("op counters corrupted: %v", out.Ops)
	}
}

// TestStatsWireRoundTripLatency: the encoded STATS response decodes to the
// same digests end to end through the frame codec.
func TestStatsWireRoundTripLatency(t *testing.T) {
	snap := StatsSnapshot{
		Ops:         map[string]uint64{"get": 4},
		SpaceDepths: map[string]int{"jobs": 2},
		OpLatency: map[string]LatencySummary{
			"get": {Count: 4, P50: 0.000040, P95: 0.000200, P99: 0.000200},
		},
	}
	r, err := decodeResponse(encodeStatsResp(3, snap))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	ls, ok := r.stats.OpLatency["get"]
	if !ok {
		t.Fatalf("latency digest missing: %+v", r.stats)
	}
	if ls.Count != 4 || math.Abs(ls.P50-0.000040) > 1e-9 || math.Abs(ls.P99-0.000200) > 1e-9 {
		t.Fatalf("digest %+v", ls)
	}
}

// TestServerRecordsOpLatency: a live server measures its ops and ships the
// digests through the STATS op to a fabric client.
func TestServerRecordsOpLatency(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})
	sp := c.Space("jobs")
	for i := 0; i < 3; i++ {
		if err := sp.Put(nil, tspace.Tuple{"job", i}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if _, _, err := sp.TryGet(nil, tspace.Template{"job", 0}); err != nil {
		t.Fatalf("TryGet: %v", err)
	}
	snap, err := c.Stats(nil)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	put, ok := snap.OpLatency["put"]
	if !ok || put.Count < 3 {
		t.Fatalf("put latency digest = %+v (snapshot %+v)", put, snap.OpLatency)
	}
	if put.P50 <= 0 || put.P99 < put.P50 {
		t.Fatalf("put quantiles implausible: %+v", put)
	}
	if tg, ok := snap.OpLatency["tryget"]; !ok || tg.Count < 1 {
		t.Fatalf("tryget latency digest = %+v", tg)
	}
	if snap.String() == "" || len(snap.String()) < 10 {
		t.Fatal("String() render empty")
	}
}

// TestClientMetricsRecorded: the client-side collector sees dial latency
// and per-op round trips after real traffic.
func TestClientMetricsRecorded(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})
	sp := c.Space("jobs")
	if err := sp.Put(nil, tspace.Tuple{"x"}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if c.metrics.dialLatency.Count() != 1 {
		t.Fatalf("dial latency count = %d, want 1", c.metrics.dialLatency.Count())
	}
	if n := c.metrics.opLatency[opPut-1].Count(); n != 1 {
		t.Fatalf("put latency count = %d, want 1", n)
	}
	ms := c.Collector().Collect()
	var sawDial, sawOp bool
	for _, m := range ms {
		switch m.Name {
		case "sting_remote_client_dial_seconds":
			sawDial = true
		case "sting_remote_client_op_latency_seconds":
			sawOp = true
		}
	}
	if !sawDial || !sawOp {
		t.Fatalf("collector families missing (dial=%v op=%v) in %d metrics", sawDial, sawOp, len(ms))
	}
}

// TestDisableMetricsStillCounts: with histograms off the plain counters
// keep working and the STATS digest map is simply empty.
func TestDisableMetricsStillCounts(t *testing.T) {
	var s Stats
	s.serve(opPut)
	s.observe(opPut, time.Millisecond) // nil histogram: must not panic
	snap := s.Snapshot(nil)
	if snap.Ops["put"] != 1 {
		t.Fatalf("ops = %v", snap.Ops)
	}
	if len(snap.OpLatency) != 0 {
		t.Fatalf("latency digests present despite disabled metrics: %v", snap.OpLatency)
	}
}
