package remote

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Stats counts server-side fabric events, mirroring the core.VPStats
// snapshot idiom: cumulative atomic counters, a plain-value Snapshot, and
// a render helper for the daemon's -dump-stats. OpLatency carries one
// lock-free histogram per wire op, recorded in the server dispatch path;
// the histograms are optional (nil when metrics are disabled) and every
// recording site tolerates their absence.
type Stats struct {
	OpsServed   [12]atomic.Uint64 // indexed by request op - 1 (through opAnnounce)
	ProtoErrors atomic.Uint64    // malformed frames received
	Timeouts    atomic.Uint64    // blocking ops expired server-side
	Canceled    atomic.Uint64    // waiters withdrawn (disconnect/shutdown)
	Redirects   atomic.Uint64    // keyed ops refused by the cluster route check
	Blocked     atomic.Int64     // gauge: ops currently inside a blocking Get/Rd
	BytesIn     atomic.Uint64    // frame bytes received
	BytesOut    atomic.Uint64    // frame bytes sent
	Conns       atomic.Uint64    // connections accepted, cumulative
	ConnsActive atomic.Int64     // gauge: connections currently open

	OpLatency [12]*obs.Histogram // per-op service latency, indexed by op - 1

	// Pipelining instrumentation, always armed (one lock-free observe per
	// frame): PipelineDepth samples how many requests were in flight on the
	// arriving frame's connection (1 = strict request/response), BatchSize
	// samples how many Puts each BATCH frame coalesced.
	PipelineDepth *obs.Histogram
	BatchSize     *obs.Histogram
	BatchPuts     atomic.Uint64 // tuples deposited via BATCH frames
}

func (s *Stats) serve(op byte) {
	if op >= 1 && int(op) <= len(s.OpsServed) {
		s.OpsServed[op-1].Add(1)
	}
}

// initLatency arms the per-op histograms (metric recording on).
func (s *Stats) initLatency() {
	for i := range s.OpLatency {
		s.OpLatency[i] = obs.NewHistogram()
	}
}

// initPipeline arms the always-on pipelining histograms; recording sites
// tolerate nil, but every server arms them (one atomic add per frame).
func (s *Stats) initPipeline() {
	s.PipelineDepth = obs.NewHistogram()
	s.BatchSize = obs.NewHistogram()
}

// observe records one op's service latency; a no-op when histograms are
// off or the op is out of range.
func (s *Stats) observe(op byte, d time.Duration) {
	if op >= 1 && int(op) <= len(s.OpLatency) {
		if h := s.OpLatency[op-1]; h != nil {
			h.Observe(d.Seconds())
		}
	}
}

// Snapshot copies the counters and attaches the per-space depths.
func (s *Stats) Snapshot(depths map[string]int) StatsSnapshot {
	snap := StatsSnapshot{
		Ops:         make(map[string]uint64, len(s.OpsServed)),
		ProtoErrors: s.ProtoErrors.Load(),
		Timeouts:    s.Timeouts.Load(),
		Canceled:    s.Canceled.Load(),
		Redirects:   s.Redirects.Load(),
		Blocked:     s.Blocked.Load(),
		BytesIn:     s.BytesIn.Load(),
		BytesOut:    s.BytesOut.Load(),
		Conns:       s.Conns.Load(),
		ConnsActive: s.ConnsActive.Load(),
		BatchPuts:   s.BatchPuts.Load(),
		SpaceDepths: depths,
	}
	for i := range s.OpsServed {
		if n := s.OpsServed[i].Load(); n > 0 {
			snap.Ops[opName(byte(i+1))] = n
		}
	}
	snap.OpLatency = map[string]LatencySummary{}
	for i, h := range s.OpLatency {
		if h == nil {
			continue
		}
		hs := h.Snapshot()
		if hs.Count == 0 {
			continue
		}
		snap.OpLatency[opName(byte(i+1))] = LatencySummary{
			Count: hs.Count,
			P50:   hs.Quantile(0.50),
			P95:   hs.Quantile(0.95),
			P99:   hs.Quantile(0.99),
		}
	}
	if snap.SpaceDepths == nil {
		snap.SpaceDepths = map[string]int{}
	}
	return snap
}

// LatencySummary is the wire-portable digest of one op's latency
// histogram: bucket-interpolated quantiles in seconds plus the sample
// count. It is what -dump-stats and fabric clients see without HTTP.
type LatencySummary struct {
	Count         uint64
	P50, P95, P99 float64 // seconds
}

// StatsSnapshot is a plain-value copy of Stats plus per-space depths; it
// is what the STATS wire op ships.
type StatsSnapshot struct {
	Ops         map[string]uint64 // per-op served counts, by op name
	ProtoErrors uint64
	Timeouts    uint64
	Canceled    uint64
	Redirects   uint64
	Blocked     int64
	BytesIn     uint64
	BytesOut    uint64
	Conns       uint64
	ConnsActive int64
	BatchPuts   uint64
	SpaceDepths map[string]int
	OpLatency   map[string]LatencySummary // per-op latency digests, by op name
}

// OpsTotal sums the per-op counters.
func (s StatsSnapshot) OpsTotal() uint64 {
	var n uint64
	for _, v := range s.Ops {
		n += v
	}
	return n
}

// counters flattens the snapshot for the wire (op counters prefixed
// "op.").
func (s StatsSnapshot) counters() map[string]int64 {
	m := map[string]int64{
		"proto_errors": int64(s.ProtoErrors),
		"timeouts":     int64(s.Timeouts),
		"canceled":     int64(s.Canceled),
		"redirects":    int64(s.Redirects),
		"blocked":      s.Blocked,
		"bytes_in":     int64(s.BytesIn),
		"bytes_out":    int64(s.BytesOut),
		"conns":        int64(s.Conns),
		"conns_active": s.ConnsActive,
		"batch_puts":   int64(s.BatchPuts),
	}
	for op, v := range s.Ops {
		m["op."+op] = int64(v)
	}
	// Latency digests flatten to integer-nanosecond counters, keeping the
	// STATS wire format a flat string→int64 map (old peers simply ignore
	// the unknown keys).
	for op, ls := range s.OpLatency {
		m["lat."+op+".count"] = int64(ls.Count)
		m["lat."+op+".p50_ns"] = int64(ls.P50 * 1e9)
		m["lat."+op+".p95_ns"] = int64(ls.P95 * 1e9)
		m["lat."+op+".p99_ns"] = int64(ls.P99 * 1e9)
	}
	return m
}

// setCounters is the wire-decoding inverse of counters.
func (s *StatsSnapshot) setCounters(m map[string]int64) {
	s.Ops = make(map[string]uint64)
	s.OpLatency = make(map[string]LatencySummary)
	for k, v := range m {
		switch k {
		case "proto_errors":
			s.ProtoErrors = uint64(v)
		case "timeouts":
			s.Timeouts = uint64(v)
		case "canceled":
			s.Canceled = uint64(v)
		case "redirects":
			s.Redirects = uint64(v)
		case "blocked":
			s.Blocked = v
		case "bytes_in":
			s.BytesIn = uint64(v)
		case "bytes_out":
			s.BytesOut = uint64(v)
		case "conns":
			s.Conns = uint64(v)
		case "conns_active":
			s.ConnsActive = v
		case "batch_puts":
			s.BatchPuts = uint64(v)
		default:
			if op, ok := strings.CutPrefix(k, "op."); ok {
				s.Ops[op] = uint64(v)
			} else if rest, ok := strings.CutPrefix(k, "lat."); ok {
				op, field, ok := strings.Cut(rest, ".")
				if !ok {
					continue
				}
				ls := s.OpLatency[op]
				switch field {
				case "count":
					ls.Count = uint64(v)
				case "p50_ns":
					ls.P50 = float64(v) / 1e9
				case "p95_ns":
					ls.P95 = float64(v) / 1e9
				case "p99_ns":
					ls.P99 = float64(v) / 1e9
				default:
					continue
				}
				s.OpLatency[op] = ls
			}
		}
	}
}

// String renders the snapshot as the table -dump-stats prints.
func (s StatsSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops served: %d", s.OpsTotal())
	ops := make([]string, 0, len(s.Ops))
	for op := range s.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(&b, "  %s=%d", op, s.Ops[op])
	}
	fmt.Fprintf(&b, "\nblocked waiters: %d   timeouts: %d   canceled: %d   redirects: %d   protocol errors: %d\n",
		s.Blocked, s.Timeouts, s.Canceled, s.Redirects, s.ProtoErrors)
	fmt.Fprintf(&b, "bytes in/out: %d/%d   conns: %d (%d active)\n",
		s.BytesIn, s.BytesOut, s.Conns, s.ConnsActive)
	lops := make([]string, 0, len(s.OpLatency))
	for op := range s.OpLatency {
		lops = append(lops, op)
	}
	sort.Strings(lops)
	for _, op := range lops {
		ls := s.OpLatency[op]
		fmt.Fprintf(&b, "latency %-8s p50=%s p95=%s p99=%s (n=%d)\n",
			op, latencyDur(ls.P50), latencyDur(ls.P95), latencyDur(ls.P99), ls.Count)
	}
	names := make([]string, 0, len(s.SpaceDepths))
	for n := range s.SpaceDepths {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "space %-20q depth %d\n", n, s.SpaceDepths[n])
	}
	return b.String()
}

// latencyDur renders a seconds value as a rounded duration string.
func latencyDur(sec float64) string {
	return time.Duration(sec * 1e9).Round(time.Microsecond).String()
}
