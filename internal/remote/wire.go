// Package remote is the networked tuple-space fabric: it serves STING's
// first-class tuple spaces (§4.2) over TCP so that processes — and, via
// sharding in a later PR, whole fleets — coordinate through the same
// content-addressable synchronizing memory a single substrate offers
// in-process.
//
// The design keeps the coordination protocol behind a narrow, substrate-
// level interface. The server runs one virtual machine: every request is
// handled by a STING thread scheduled through policy-managed VPs, and a
// blocking Get/Rd parks that thread via the ordinary block/wakeup
// machinery — no OS thread (and no goroutine beyond the thread's recycled
// TCB) is consumed per blocked waiter. Network reads live on per-
// connection sio.FrameConn call-backs, mirroring how the paper's
// non-blocking I/O delivers device completions.
//
// Wire format: length-prefixed frames (sio.FrameConn), payload =
//
//	byte  op
//	u32   request id (big endian)
//	u32   deadline in ms (0 = none; blocking ops only)
//	str   space name (uvarint length + bytes)
//	body  op-specific (tuple, template, stats, …) via the tspace codec
//
// Malformed frames never panic the server: decoding returns ErrProtocol,
// the client receives a protocol error, and the connection closes.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tspace"
)

// Protocol versions carried in the HELLO exchange. The client announces
// the highest version it speaks; the server replies with
// min(client, server), and both sides speak the negotiated version for the
// rest of the connection. Version 2 adds trailing TLV extensions to
// request frames (currently the trace-context extension); they are only
// sent once the handshake negotiated ≥2, because version-1 decoders
// reject trailing bytes. Version 3 adds TXNCOMMIT: one frame carrying a
// whole transaction's buffered write/validate log for a single atomic
// server-side commit; it is only sent once the handshake negotiated ≥3,
// because older decoders close the connection on an unknown op. Version 4
// adds BATCH (many non-blocking Puts coalesced into one frame, answered
// by one per-entry status frame) and ANNOUNCE (a fire-and-forget client
// capability note carrying its connection-pool size); both are only sent
// once the handshake negotiated ≥4.
const (
	protocolVersion    = 4
	minProtocolVersion = 1
)

// ProtocolVersion reports the highest wire-protocol version this build
// speaks — the sting_build_info label, so a mixed-version cluster is
// visible from a dashboard before an interop bug finds it the hard way.
func ProtocolVersion() int { return protocolVersion }

// maxFrame bounds one frame's payload.
const maxFrame = 1 << 20

// maxNameLen bounds a space name on the wire.
const maxNameLen = 256

// Request ops.
const (
	opHello byte = iota + 1
	opPut
	opGet
	opRd
	opTryGet
	opTryRd
	opStats
	opLen
	// opCancel withdraws an in-flight blocking op on the same connection
	// (body: the target request id). Fire-and-forget: the canceled op
	// itself answers with codeCanceled; opCancel has no response of its
	// own, so a stale cancel (the op already finished) is a silent no-op.
	opCancel
	// opTxnCommit (version ≥3) ships a transaction's whole buffered log —
	// reads to validate, takes, puts, possibly across several spaces of
	// this server — for one atomic commit. Answers respOK on commit,
	// codeConflict when validation fails (the client retries its body).
	opTxnCommit
	// opBatch (version ≥4) coalesces up to maxBatchOps non-blocking Puts —
	// each carrying its own space — into one frame sharing one request id.
	// Answered by a single respBatch with a per-entry status, so one slow
	// entry (say, a redirect) fails alone instead of poisoning the batch.
	opBatch
	// opAnnounce (version ≥4) is a fire-and-forget capability note sent
	// after the handshake: body is the client's connection-pool size as a
	// uvarint, feeding the server's sting_remote_conn_pool_size gauge. No
	// response.
	opAnnounce
)

// Response ops (disjoint from requests so a stray frame cannot be
// mistaken for the other direction).
const (
	respOK byte = iota + 64
	respTuple
	respNoMatch
	respErr
	respStats
	respLen
	// respBatch answers an opBatch frame: uvarint entry count, then one
	// status byte per entry (0 = applied) followed by an error message
	// string when the status is nonzero.
	respBatch
)

// maxBatchOps bounds how many Puts one batch frame may carry; the client
// flushes at this count, the server rejects beyond it.
const maxBatchOps = 256

// Wire error codes carried by respErr.
const (
	codeProtocol byte = iota + 1
	codeUnknownOp
	codeBadSpace
	codeTimeout
	codeShutdown
	codeUnsupported
	codeInternal
	codeCanceled
	// codeRedirect rejects a keyed op routed to the wrong shard of a
	// cluster; the message carries "<node-id> <addr>" of the owner.
	codeRedirect
	// codeConflict rejects a TXNCOMMIT whose read validation failed; the
	// client surfaces it as a tspace.ConflictError driving a retry.
	codeConflict
)

// Errors.
var (
	// ErrProtocol wraps every malformed-frame error.
	ErrProtocol = errors.New("remote: protocol error")
	// ErrShutdown is returned for operations interrupted by server drain.
	ErrShutdown = errors.New("remote: server shutting down")
	// ErrDisconnected is the cancel reason for waiters whose client hung up.
	ErrDisconnected = errors.New("remote: client disconnected")
	// ErrUnsupported is returned for operations a remote space cannot
	// perform (Spawn: thunks do not cross address spaces).
	ErrUnsupported = errors.New("remote: operation unsupported over the wire")
	// ErrTimeout is matched (errors.Is) by every *TimeoutError.
	ErrTimeout = errors.New("remote: deadline exceeded")
	// ErrCanceled is returned for a blocking op withdrawn by a CANCEL
	// frame from its own client (the cluster fan-out's loser branches).
	ErrCanceled = errors.New("remote: operation canceled")
	// ErrRedirect is matched (errors.Is) by every *RedirectError.
	ErrRedirect = errors.New("remote: keyed op routed to wrong shard")
)

// RedirectError is the typed rejection a cluster-aware server returns for
// a keyed operation whose owning shard — by the membership both sides
// share — is some other node. Clients re-route to Node/Addr or surface a
// configuration mismatch.
type RedirectError struct {
	Op    string
	Space string
	Node  string // owning shard's node id
	Addr  string // owning shard's address
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("remote: %s on %q belongs to shard %s (%s)", e.Op, e.Space, e.Node, e.Addr)
}

// Is makes errors.Is(err, ErrRedirect) hold.
func (e *RedirectError) Is(target error) bool { return target == ErrRedirect }

// redirectMessage renders the owner for the wire; node ids are validated
// space-free at membership load, so a space separator is unambiguous.
func redirectMessage(e *RedirectError) string { return e.Node + " " + e.Addr }

func parseRedirect(msg, op, space string) *RedirectError {
	node, addr, _ := strings.Cut(msg, " ")
	return &RedirectError{Op: op, Space: space, Node: node, Addr: addr}
}

// TimeoutError is the typed error a deadline-bounded operation returns.
// It matches ErrTimeout via errors.Is and reports Timeout() true, so both
// sentinel checks and net.Error-style probes work.
type TimeoutError struct {
	Op       string
	Space    string
	Deadline time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("remote: %s on %q exceeded deadline %v", e.Op, e.Space, e.Deadline)
}

// Timeout reports true, mirroring net.Error.
func (e *TimeoutError) Timeout() bool { return true }

// Is makes errors.Is(err, ErrTimeout) hold.
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// opName names a request op for stats and errors.
func opName(op byte) string {
	switch op {
	case opHello:
		return "hello"
	case opPut:
		return "put"
	case opGet:
		return "get"
	case opRd:
		return "rd"
	case opTryGet:
		return "tryget"
	case opTryRd:
		return "tryrd"
	case opStats:
		return "stats"
	case opLen:
		return "len"
	case opCancel:
		return "cancel"
	case opTxnCommit:
		return "txncommit"
	case opBatch:
		return "batch"
	case opAnnounce:
		return "announce"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// Request-frame extension markers (version ≥2). Extensions trail the op
// body as marker byte + uvarint length + payload; unknown markers are
// skipped, so new extensions never break a peer that negotiated them.
const (
	// extTraceCtx propagates the caller's trace context: trace id (16
	// bytes) + parent span id (8 bytes), big-endian.
	extTraceCtx byte = 1
)

const extTraceCtxLen = 24

// batchEntry is one coalesced Put inside an opBatch frame.
type batchEntry struct {
	space string
	tuple tspace.Tuple
}

// batchStatus is one entry's outcome inside a respBatch frame.
type batchStatus struct {
	code byte // 0 = applied; else a wire error code
	msg  string
}

// request is a decoded client frame.
type request struct {
	op       byte
	id       uint32
	deadline time.Duration
	space    string
	tuple    tspace.Tuple    // opPut
	template tspace.Template // opGet/opRd/opTryGet/opTryRd
	txnOps   []tspace.TxnOp  // opTxnCommit: the buffered commit log
	target   uint32          // opCancel: the request id to withdraw
	version  byte            // opHello: the client's announced version
	batch    []batchEntry    // opBatch: the coalesced puts
	poolSize uint32          // opAnnounce: client's connection-pool size
	minVer   byte            // least peer version that knows this op (0 = any)

	// Propagated trace context (extTraceCtx); hasTrace gates both
	// encoding the extension and opening a server span.
	trace      obs.TraceID
	parentSpan obs.SpanID
	hasTrace   bool
}

// blockingOp reports whether the op may park a server thread.
func blockingOp(op byte) bool { return op == opGet || op == opRd }

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(b []byte, limit int) (string, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return "", 0, protoErrf("bad string length")
	}
	if l > uint64(limit) {
		return "", 0, protoErrf("string of %d bytes exceeds limit %d", l, limit)
	}
	if uint64(len(b)-n) < l {
		return "", 0, protoErrf("truncated string")
	}
	return string(b[n : n+int(l)]), n + int(l), nil
}

// Space names are low-cardinality and arrive on every frame, so the hot
// decode path interns them: a repeat name is a map lookup (the
// []byte→string key conversion compiles allocation-free), not a copy.
// The table is bounded; past the cap unseen names fall back to a plain
// copy so an adversarial client cannot balloon it.
const maxInternedNames = 4096

var spaceNames = struct {
	mu sync.RWMutex
	m  map[string]string
}{m: make(map[string]string)}

func internName(b []byte) string {
	spaceNames.mu.RLock()
	s, ok := spaceNames.m[string(b)]
	spaceNames.mu.RUnlock()
	if ok {
		return s
	}
	spaceNames.mu.Lock()
	defer spaceNames.mu.Unlock()
	if s, ok := spaceNames.m[string(b)]; ok {
		return s
	}
	if len(spaceNames.m) >= maxInternedNames {
		return string(b)
	}
	s = string(b)
	spaceNames.m[s] = s
	return s
}

// decodeSpaceName is decodeString through the intern table.
func decodeSpaceName(b []byte, limit int) (string, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return "", 0, protoErrf("bad string length")
	}
	if l > uint64(limit) {
		return "", 0, protoErrf("string of %d bytes exceeds limit %d", l, limit)
	}
	if uint64(len(b)-n) < l {
		return "", 0, protoErrf("truncated string")
	}
	return internName(b[n : n+int(l)]), n + int(l), nil
}

// encodeRequest builds a request frame payload in fresh storage (tests
// and cold paths); the hot path appends into a pooled buffer instead.
func encodeRequest(req request) ([]byte, error) {
	return appendRequest(make([]byte, 0, 64), req)
}

// appendRequest appends a request frame payload to dst — the zero-alloc
// encode path when dst comes from sio.GetBuf with sio.PrefixLen reserved.
func appendRequest(dst []byte, req request) ([]byte, error) {
	if len(req.space) > maxNameLen {
		return nil, protoErrf("space name of %d bytes exceeds limit", len(req.space))
	}
	buf := append(dst, req.op)
	buf = binary.BigEndian.AppendUint32(buf, req.id)
	buf = binary.BigEndian.AppendUint32(buf, uint32(req.deadline/time.Millisecond))
	buf = appendString(buf, req.space)
	var err error
	switch req.op {
	case opPut:
		buf, err = tspace.AppendTuple(buf, req.tuple)
	case opGet, opRd, opTryGet, opTryRd:
		buf, err = tspace.AppendTemplate(buf, req.template)
	case opHello:
		v := req.version
		if v == 0 {
			v = protocolVersion
		}
		buf = append(buf, v)
	case opCancel:
		buf = binary.BigEndian.AppendUint32(buf, req.target)
	case opTxnCommit:
		buf, err = tspace.AppendTxnOps(buf, req.txnOps)
	case opBatch:
		if len(req.batch) == 0 || len(req.batch) > maxBatchOps {
			return nil, protoErrf("batch of %d entries", len(req.batch))
		}
		buf = binary.AppendUvarint(buf, uint64(len(req.batch)))
		for _, e := range req.batch {
			if len(e.space) > maxNameLen {
				return nil, protoErrf("space name of %d bytes exceeds limit", len(e.space))
			}
			buf = appendString(buf, e.space)
			buf, err = tspace.AppendTuple(buf, e.tuple)
			if err != nil {
				return nil, err
			}
		}
	case opAnnounce:
		buf = binary.AppendUvarint(buf, uint64(req.poolSize))
	case opStats, opLen:
		// header only
	default:
		err = protoErrf("unknown request op %d", req.op)
	}
	if err != nil {
		return nil, err
	}
	if req.hasTrace {
		buf = append(buf, extTraceCtx)
		buf = binary.AppendUvarint(buf, extTraceCtxLen)
		buf = binary.BigEndian.AppendUint64(buf, req.trace.Hi)
		buf = binary.BigEndian.AppendUint64(buf, req.trace.Lo)
		buf = binary.BigEndian.AppendUint64(buf, uint64(req.parentSpan))
	}
	return buf, nil
}

// DecodeRequest parses a request frame payload. It is exported (within the
// package's test surface) for the fuzzer: whatever bytes arrive, it
// returns a request or an error — never panics.
func decodeRequest(b []byte) (request, error) {
	var req request
	if len(b) < 9 {
		return req, protoErrf("frame of %d bytes shorter than header", len(b))
	}
	req.op = b[0]
	req.id = binary.BigEndian.Uint32(b[1:5])
	req.deadline = time.Duration(binary.BigEndian.Uint32(b[5:9])) * time.Millisecond
	name, n, err := decodeSpaceName(b[9:], maxNameLen)
	if err != nil {
		return req, err
	}
	req.space = name
	rest := b[9+n:]
	var consumed int
	switch req.op {
	case opPut:
		tup, c, err := tspace.DecodeTuple(rest)
		if err != nil {
			return req, protoErrf("put tuple: %v", err)
		}
		req.tuple = tup
		consumed = c
	case opGet, opRd, opTryGet, opTryRd:
		tpl, c, err := tspace.DecodeTemplate(rest)
		if err != nil {
			return req, protoErrf("template: %v", err)
		}
		req.template = tpl
		consumed = c
	case opHello:
		if len(rest) < 1 {
			return req, protoErrf("hello body of %d bytes", len(rest))
		}
		if rest[0] < minProtocolVersion {
			return req, protoErrf("version %d below minimum %d", rest[0], minProtocolVersion)
		}
		req.version = rest[0]
		consumed = 1
	case opCancel:
		if len(rest) < 4 {
			return req, protoErrf("cancel body of %d bytes", len(rest))
		}
		req.target = binary.BigEndian.Uint32(rest)
		consumed = 4
	case opTxnCommit:
		ops, c, err := tspace.DecodeTxnOps(rest)
		if err != nil {
			return req, protoErrf("txn ops: %v", err)
		}
		req.txnOps = ops
		consumed = c
	case opBatch:
		l, n := binary.Uvarint(rest)
		if n <= 0 {
			return req, protoErrf("bad batch count")
		}
		if l == 0 || l > maxBatchOps {
			return req, protoErrf("batch of %d entries", l)
		}
		entries := make([]batchEntry, 0, l)
		off := n
		for i := uint64(0); i < l; i++ {
			sp, c, err := decodeSpaceName(rest[off:], maxNameLen)
			if err != nil {
				return req, err
			}
			off += c
			tup, c2, err := tspace.DecodeTuple(rest[off:])
			if err != nil {
				return req, protoErrf("batch tuple %d: %v", i, err)
			}
			off += c2
			entries = append(entries, batchEntry{space: sp, tuple: tup})
		}
		req.batch = entries
		consumed = off
	case opAnnounce:
		l, n := binary.Uvarint(rest)
		if n <= 0 || l > 1<<16 {
			return req, protoErrf("bad announce body")
		}
		req.poolSize = uint32(l)
		consumed = n
	case opStats, opLen:
		consumed = 0
	default:
		return req, protoErrf("unknown request op %d", req.op)
	}
	if err := decodeExtensions(&req, rest[consumed:]); err != nil {
		return req, err
	}
	return req, nil
}

// decodeExtensions parses the TLV tail of a version-≥2 request frame:
// marker byte + uvarint length + payload, repeated. Unknown markers are
// skipped so future extensions coexist with this decoder.
func decodeExtensions(req *request, b []byte) error {
	for len(b) > 0 {
		marker := b[0]
		l, n := binary.Uvarint(b[1:])
		if n <= 0 {
			return protoErrf("bad extension length (marker %d)", marker)
		}
		if l > uint64(len(b)-1-n) {
			return protoErrf("truncated extension (marker %d)", marker)
		}
		payload := b[1+n : 1+n+int(l)]
		b = b[1+n+int(l):]
		switch marker {
		case extTraceCtx:
			if len(payload) != extTraceCtxLen {
				return protoErrf("trace context of %d bytes", len(payload))
			}
			req.trace.Hi = binary.BigEndian.Uint64(payload)
			req.trace.Lo = binary.BigEndian.Uint64(payload[8:])
			req.parentSpan = obs.SpanID(binary.BigEndian.Uint64(payload[16:]))
			req.hasTrace = !req.trace.IsZero()
		default:
			// Unknown extension: skip. New markers must tolerate old peers.
		}
	}
	return nil
}

// response encoders -------------------------------------------------------
//
// The hot path appends into pooled buffers (appendRespHeader + the
// append* family); the encode* names build fresh storage and remain for
// tests and cold paths.

func appendRespHeader(dst []byte, op byte, id uint32) []byte {
	dst = append(dst, op)
	return binary.BigEndian.AppendUint32(dst, id)
}

func respHeader(op byte, id uint32) []byte {
	return appendRespHeader(make([]byte, 0, 32), op, id)
}

// appendOK is the HELLO reply carrying the negotiated version:
// min(client's announced version, cap), where cap defaults to
// protocolVersion (ServerConfig.MaxVersion lowers it in interop tests).
func appendOK(dst []byte, id uint32, clientVersion, capVersion byte) []byte {
	v := capVersion
	if v == 0 || v > protocolVersion {
		v = protocolVersion
	}
	if clientVersion < v {
		v = clientVersion
	}
	return append(appendRespHeader(dst, respOK, id), v)
}

func encodeOK(id uint32, clientVersion byte) []byte {
	return appendOK(make([]byte, 0, 32), id, clientVersion, 0)
}

func appendTupleResp(dst []byte, id uint32, tup tspace.Tuple, bind tspace.Bindings) ([]byte, error) {
	buf, err := tspace.AppendTuple(appendRespHeader(dst, respTuple, id), tup)
	if err != nil {
		return nil, err
	}
	return tspace.AppendBindings(buf, bind)
}

func encodeTupleResp(id uint32, tup tspace.Tuple, bind tspace.Bindings) ([]byte, error) {
	return appendTupleResp(make([]byte, 0, 64), id, tup, bind)
}

func encodeNoMatch(id uint32) []byte { return respHeader(respNoMatch, id) }

func appendErrResp(dst []byte, id uint32, code byte, msg string) []byte {
	buf := append(appendRespHeader(dst, respErr, id), code)
	if len(msg) > 1024 {
		msg = msg[:1024]
	}
	return appendString(buf, msg)
}

func encodeErrResp(id uint32, code byte, msg string) []byte {
	return appendErrResp(make([]byte, 0, 64), id, code, msg)
}

func appendLenResp(dst []byte, id uint32, n int) []byte {
	return binary.AppendVarint(appendRespHeader(dst, respLen, id), int64(n))
}

func encodeLenResp(id uint32, n int) []byte {
	return appendLenResp(make([]byte, 0, 32), id, n)
}

func appendBatchResp(dst []byte, id uint32, sts []batchStatus) []byte {
	buf := appendRespHeader(dst, respBatch, id)
	buf = binary.AppendUvarint(buf, uint64(len(sts)))
	for _, st := range sts {
		buf = append(buf, st.code)
		if st.code != 0 {
			msg := st.msg
			if len(msg) > 1024 {
				msg = msg[:1024]
			}
			buf = appendString(buf, msg)
		}
	}
	return buf
}

func encodeStatsResp(id uint32, s StatsSnapshot) []byte {
	buf := respHeader(respStats, id)
	counters := s.counters()
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = binary.AppendVarint(buf, counters[k])
	}
	names := make([]string, 0, len(s.SpaceDepths))
	for n := range s.SpaceDepths {
		names = append(names, n)
	}
	sort.Strings(names)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))
	for _, n := range names {
		buf = appendString(buf, n)
		buf = binary.AppendVarint(buf, int64(s.SpaceDepths[n]))
	}
	return buf
}

// response is a decoded server frame.
type response struct {
	op      byte
	id      uint32
	tuple   tspace.Tuple
	bind    tspace.Bindings
	code    byte
	message string
	length  int64
	stats   StatsSnapshot
	version byte          // respOK: the version the server negotiated
	batch   []batchStatus // respBatch: one status per coalesced entry
}

func decodeResponse(b []byte) (response, error) {
	var r response
	if len(b) < 5 {
		return r, protoErrf("response of %d bytes shorter than header", len(b))
	}
	r.op = b[0]
	r.id = binary.BigEndian.Uint32(b[1:5])
	rest := b[5:]
	switch r.op {
	case respOK:
		if len(rest) != 1 || rest[0] < minProtocolVersion || rest[0] > protocolVersion {
			return r, protoErrf("bad hello reply")
		}
		r.version = rest[0]
	case respTuple:
		tup, c, err := tspace.DecodeTuple(rest)
		if err != nil {
			return r, protoErrf("tuple: %v", err)
		}
		bind, c2, err := tspace.DecodeBindings(rest[c:])
		if err != nil {
			return r, protoErrf("bindings: %v", err)
		}
		if len(rest) != c+c2 {
			return r, protoErrf("%d trailing bytes", len(rest)-c-c2)
		}
		r.tuple, r.bind = tup, bind
	case respNoMatch:
		if len(rest) != 0 {
			return r, protoErrf("%d trailing bytes", len(rest))
		}
	case respErr:
		if len(rest) < 1 {
			return r, protoErrf("empty error body")
		}
		r.code = rest[0]
		msg, _, err := decodeString(rest[1:], 4096)
		if err != nil {
			return r, err
		}
		r.message = msg
	case respLen:
		v, n := binary.Varint(rest)
		if n <= 0 {
			return r, protoErrf("bad length")
		}
		r.length = v
	case respStats:
		s, err := decodeStatsBody(rest)
		if err != nil {
			return r, err
		}
		r.stats = s
	case respBatch:
		l, n := binary.Uvarint(rest)
		if n <= 0 {
			return r, protoErrf("bad batch status count")
		}
		if l == 0 || l > maxBatchOps {
			return r, protoErrf("batch of %d statuses", l)
		}
		sts := make([]batchStatus, 0, l)
		off := n
		for i := uint64(0); i < l; i++ {
			if off >= len(rest) {
				return r, protoErrf("truncated batch status")
			}
			st := batchStatus{code: rest[off]}
			off++
			if st.code != 0 {
				msg, c, err := decodeString(rest[off:], 4096)
				if err != nil {
					return r, err
				}
				st.msg = msg
				off += c
			}
			sts = append(sts, st)
		}
		if off != len(rest) {
			return r, protoErrf("%d trailing bytes", len(rest)-off)
		}
		r.batch = sts
	default:
		return r, protoErrf("unknown response op %d", r.op)
	}
	return r, nil
}

func decodeStatsBody(b []byte) (StatsSnapshot, error) {
	var s StatsSnapshot
	if len(b) < 4 {
		return s, protoErrf("truncated stats")
	}
	nc := binary.BigEndian.Uint32(b)
	if nc > 1024 {
		return s, protoErrf("%d stats counters exceed limit", nc)
	}
	off := 4
	counters := make(map[string]int64, nc)
	for i := uint32(0); i < nc; i++ {
		k, n, err := decodeString(b[off:], 256)
		if err != nil {
			return s, err
		}
		off += n
		v, n2 := binary.Varint(b[off:])
		if n2 <= 0 {
			return s, protoErrf("bad counter value")
		}
		off += n2
		counters[k] = v
	}
	s.setCounters(counters)
	if len(b)-off < 4 {
		return s, protoErrf("truncated space depths")
	}
	ns := binary.BigEndian.Uint32(b[off:])
	if ns > 1<<16 {
		return s, protoErrf("%d spaces exceed limit", ns)
	}
	off += 4
	s.SpaceDepths = make(map[string]int, ns)
	for i := uint32(0); i < ns; i++ {
		name, n, err := decodeString(b[off:], maxNameLen)
		if err != nil {
			return s, err
		}
		off += n
		v, n2 := binary.Varint(b[off:])
		if n2 <= 0 {
			return s, protoErrf("bad depth value")
		}
		off += n2
		s.SpaceDepths[name] = int(v)
	}
	if off != len(b) {
		return s, protoErrf("%d trailing bytes", len(b)-off)
	}
	return s, nil
}

// wireError converts a respErr frame into a typed Go error.
func wireError(r response, op, space string, deadline time.Duration) error {
	switch r.code {
	case codeTimeout:
		return &TimeoutError{Op: op, Space: space, Deadline: deadline}
	case codeShutdown:
		return ErrShutdown
	case codeCanceled:
		return ErrCanceled
	case codeRedirect:
		return parseRedirect(r.message, op, space)
	case codeConflict:
		return &tspace.ConflictError{Space: space, Detail: r.message}
	case codeUnsupported:
		return fmt.Errorf("%w: %s", ErrUnsupported, r.message)
	case codeProtocol, codeUnknownOp:
		return fmt.Errorf("%w: server: %s", ErrProtocol, r.message)
	default:
		return fmt.Errorf("remote: server error (%s): %s", op, r.message)
	}
}
