package remote

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testkit"
	"repro/internal/tspace"
)

// droppingListener closes the first drop connections right after accept —
// the fault the client's dial retry is built for (a server still coming
// up, a flaky proxy). Later connections pass through untouched.
type droppingListener struct {
	net.Listener
	drop     int32
	accepted atomic.Int32
	dropped  atomic.Int32
}

func (dl *droppingListener) Accept() (net.Conn, error) {
	for {
		c, err := dl.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if n := dl.accepted.Add(1); n <= dl.drop {
			dl.dropped.Add(1)
			c.Close()
			continue
		}
		return c, nil
	}
}

// startDroppingServer serves the fabric behind a listener that kills the
// first drop connections.
func startDroppingServer(t *testing.T, drop int32) (*droppingListener, string) {
	t.Helper()
	srv, _ := startServer(t) // its own listener stays idle; we add a faulty one
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dl := &droppingListener{Listener: ln, drop: drop}
	go func() {
		for {
			c, err := dl.Accept()
			if err != nil {
				return
			}
			srv.addConn(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return dl, ln.Addr().String()
}

// TestDialRetriesTransientFailures: with the first 3 connections dropped,
// Dial must back off and land on the 4th.
func TestDialRetriesTransientFailures(t *testing.T) {
	dl, addr := startDroppingServer(t, 3)
	start := time.Now()
	c, err := Dial(nil, addr, DialConfig{
		DialRetries: 4,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial through 3 drops: %v", err)
	}
	defer c.Close() //nolint:errcheck
	if got := dl.dropped.Load(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	// Three retries at 5/10/20ms backoff: the elapsed time shows the
	// client actually backed off rather than hammering.
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("dial finished in %v; backoff not applied", elapsed)
	}
	if err := c.Space("x").Put(nil, tspace.Tuple{"ok"}); err != nil {
		t.Fatalf("Put after retried dial: %v", err)
	}
}

// TestDialRetriesExhausted: when the fault outlasts the budget, Dial
// reports the underlying error instead of hanging.
func TestDialRetriesExhausted(t *testing.T) {
	_, addr := startDroppingServer(t, 100)
	_, err := Dial(nil, addr, DialConfig{
		DialRetries: 2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Timeout:     200 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("Dial succeeded through a dead listener")
	}
}

// TestDialConnectionRefused: nothing listening at all — the connect
// itself fails, and the bounded retry still terminates.
func TestDialConnectionRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port; connects now get refused
	_, err = Dial(nil, addr, DialConfig{
		DialRetries: 1,
		BaseBackoff: time.Millisecond,
	})
	if err == nil {
		t.Fatal("Dial succeeded with nothing listening")
	}
}

// TestOpRedialsAfterConnLoss: when the connection dies between operations
// the next op redials transparently — its frame was never written, so the
// retry is safe.
func TestOpRedialsAfterConnLoss(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	})
	sp := c.Space("jobs")
	if err := sp.Put(nil, tspace.Tuple{"a", 1}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Kill the transport out from under the client.
	cc := c.conns[0]
	cc.mu.Lock()
	fc := cc.fc
	cc.mu.Unlock()
	fc.Conn().Close()
	// The very next op may race the reader noticing the death; the retry
	// budget absorbs it either way.
	if err := sp.Put(nil, tspace.Tuple{"b", 2}); err != nil {
		t.Fatalf("Put after conn loss: %v", err)
	}
	if n := sp.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

// TestInFlightFailsOnConnLoss: an op whose frame already left must NOT be
// retried (a second Put could double-deposit); it fails with a
// disconnection error instead.
func TestInFlightFailsOnConnLoss(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{OpRetries: 5})
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Space("jobs").Get(nil, tspace.Template{"never"})
		done <- err
	}()
	// Wait for the Get frame to be on the wire (pending call registered).
	deadline := time.Now().Add(5 * time.Second)
	cc := c.conns[0]
	for {
		cc.mu.Lock()
		n := len(cc.pending)
		fc := cc.fc
		cc.mu.Unlock()
		if n == 1 {
			fc.Conn().Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Get never went in flight")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrDisconnected) {
			t.Fatalf("in-flight Get err = %v, want ErrDisconnected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight Get hung after connection loss")
	}
}

// TestClosedClientRejectsOps: after Close, operations fail fast with
// net.ErrClosed instead of redialing.
func TestClosedClientRejectsOps(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Space("x").Put(nil, tspace.Tuple{"a"}); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Put on closed client = %v, want net.ErrClosed", err)
	}
}

// TestBlockingDeadlineExpiryTerminal: a blocking Get whose deadline has
// passed must fail with a timeout, not burn the op-retry budget redialing
// a dead server. Regression: the retry loop used to treat every register
// failure as transient, so a 50ms-deadline Get against a downed shard
// spent OpRetries full dial-retry cycles (seconds) before giving up — and
// then reported exhausted retries instead of the timeout it was.
func TestBlockingDeadlineExpiryTerminal(t *testing.T) {
	srv, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{
		DialRetries: 4,
		BaseBackoff: 20 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		OpRetries:   5,
	})
	srv.Shutdown()
	// Wait for the client to notice the dead transport so the Get goes
	// straight to the redial path rather than racing the reader teardown.
	waitUntil := time.Now().Add(2 * time.Second)
	cc := c.conns[0]
	for {
		cc.mu.Lock()
		gone := cc.fc == nil
		cc.mu.Unlock()
		if gone {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatal("connection never torn down after shutdown")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	_, _, err := c.Space("jobs").Deadline(50*time.Millisecond).Get(nil, tspace.Template{"never"})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Get err = %v, want ErrTimeout", err)
	}
	// One redial cycle may still run to completion (~300ms here); five of
	// them must not.
	if elapsed > time.Second {
		t.Fatalf("Get took %v; deadline expiry kept redialing", elapsed)
	}
}

// TestCancelWithdrawsBlockingGet: firing a client-side token sends a
// CANCEL frame that withdraws the parked server-side waiter; the call
// returns ErrCanceled and the server counts the withdrawal.
func TestCancelWithdrawsBlockingGet(t *testing.T) {
	srv, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})
	tok := tspace.NewCancelToken()
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Space("jobs").GetCancel(nil, tspace.Template{"never"}, tok)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Blocked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Get never parked server-side")
		}
		time.Sleep(time.Millisecond)
	}
	tok.Cancel(nil)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("GetCancel err = %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled Get hung")
	}
	if n := srv.Stats().Canceled; n != 1 {
		t.Fatalf("server Canceled = %d, want 1", n)
	}
}

// TestCancelBeforeParkStillWithdraws: a token fired before the op's frame
// is even written must short-circuit (or withdraw immediately after
// registration via the server's precanceled set) — never hang.
func TestCancelBeforeParkStillWithdraws(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})
	tok := tspace.NewCancelToken()
	tok.Cancel(nil)
	_, _, err := c.Space("jobs").GetCancel(nil, tspace.Template{"never"}, tok)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled GetCancel err = %v, want ErrCanceled", err)
	}
}

// TestRouteCheckRedirects: a server armed with a routing policy answers
// misrouted ops with a typed redirect naming the owning shard, counts it,
// and leaves correctly-routed ops alone.
func TestRouteCheckRedirects(t *testing.T) {
	vm := testkit.VM(t, 2, 2)
	srv := NewServer(vm, ServerConfig{
		RouteCheck: func(space string, tup tspace.Tuple, tpl tspace.Template) error {
			if space == "keyed" {
				return &RedirectError{Op: "put", Space: space, Node: "n2", Addr: "10.0.0.2:7000"}
			}
			return nil
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(srv.Shutdown)
	c := dialTest(t, ln.Addr().String(), DialConfig{})

	if err := c.Space("open").Put(nil, tspace.Tuple{"a"}); err != nil {
		t.Fatalf("Put on accepted space: %v", err)
	}
	err = c.Space("keyed").Put(nil, tspace.Tuple{"a", 1})
	if !errors.Is(err, ErrRedirect) {
		t.Fatalf("misrouted Put err = %v, want ErrRedirect", err)
	}
	var re *RedirectError
	if !errors.As(err, &re) || re.Node != "n2" || re.Addr != "10.0.0.2:7000" {
		t.Fatalf("redirect = %+v, want node n2 at 10.0.0.2:7000", re)
	}
	if n := srv.Stats().Redirects; n != 1 {
		t.Fatalf("Redirects = %d, want 1", n)
	}
	if err := c.Ping(nil); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

// TestBackoffSchedule pins the exponential-with-cap shape.
func TestBackoffSchedule(t *testing.T) {
	cfg := DialConfig{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 65 * time.Millisecond}.withDefaults()
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		65 * time.Millisecond, 65 * time.Millisecond,
	}
	for i, w := range want {
		if got := cfg.backoff(i); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, w)
		}
	}
}
