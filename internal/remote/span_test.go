package remote

import (
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/testkit"
	"repro/internal/tspace"
)

// TestClientServerSpanParentage is the wire-propagation acceptance: a
// traced STING thread's remote ops open client spans, the TRACECTX
// extension carries (trace, span) to the server, and the server-side
// dispatch opens a server span parented on the client span — one trace ID
// end to end, no leaked open spans.
func TestClientServerSpanParentage(t *testing.T) {
	buf := obs.NewSpanBuffer(1024)
	obs.SetSpanSink(buf.Record)
	defer obs.SetSpanSink(nil)
	base := obs.OpenSpans()

	vm := testkit.VM(t, 2, 2)
	srv := NewServer(vm, ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(srv.Shutdown)

	root := obs.StartSpan(obs.SpanContext{}, "remote-test-root", obs.SpanInternal)
	th := vm.Spawn(func(ctx *core.Context) ([]core.Value, error) {
		c, err := Dial(ctx, ln.Addr().String(), DialConfig{})
		if err != nil {
			return nil, err
		}
		defer c.Close() //nolint:errcheck
		sp := c.Space("jobs")
		if err := sp.Put(ctx, tspace.Tuple{"job", int64(1)}); err != nil {
			return nil, err
		}
		if _, _, err := sp.Get(ctx, tspace.Template{"job", tspace.F("n")}); err != nil {
			return nil, err
		}
		return nil, nil
	}, core.WithName("traced-client"), core.WithSpanContext(root.Context()))
	if _, err := core.JoinThread(th); err != nil {
		t.Fatalf("client thread: %v", err)
	}
	root.End()
	srv.Shutdown() // waits for request threads, so server spans are ended

	if got := obs.OpenSpans(); got != base {
		t.Fatalf("OpenSpans = %d, want %d (leaked span)", got, base)
	}
	spans := buf.Drain()
	rc := root.Context()
	clients := map[obs.SpanID]*obs.SpanData{}
	var servers []*obs.SpanData
	for _, s := range spans {
		if s.Trace != rc.Trace {
			t.Fatalf("span %q on trace %v, want %v", s.Name, s.Trace, rc.Trace)
		}
		switch s.Kind {
		case obs.SpanClient:
			clients[s.Span] = s
		case obs.SpanServer:
			servers = append(servers, s)
		}
	}
	if len(clients) < 2 { // put + get at minimum (hello is untraced)
		t.Fatalf("client spans = %d, want ≥2", len(clients))
	}
	if len(servers) < 2 {
		t.Fatalf("server spans = %d, want ≥2", len(servers))
	}
	sawOps := map[string]bool{}
	for _, s := range servers {
		parent, ok := clients[s.Parent]
		if !ok {
			t.Fatalf("server span %q parent %v matches no client span", s.Name, s.Parent)
		}
		sawOps[s.Name] = true
		if want := "client/" + s.Name[len("server/"):]; parent.Name != want {
			t.Fatalf("server span %q parented on %q, want %q", s.Name, parent.Name, want)
		}
	}
	if !sawOps["server/put"] || !sawOps["server/get"] {
		t.Fatalf("server ops traced = %v, want put and get", sawOps)
	}
}

// TestUntracedClientSendsNoSpans: a nil-context client must not grow
// spans on the server (the hasTrace gate), even with a sink installed.
func TestUntracedClientSendsNoSpans(t *testing.T) {
	buf := obs.NewSpanBuffer(64)
	obs.SetSpanSink(buf.Record)
	defer obs.SetSpanSink(nil)

	srv, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})
	sp := c.Space("jobs")
	if err := sp.Put(nil, tspace.Tuple{"job", int64(1)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, _, err := sp.TryRd(nil, tspace.Template{"job", tspace.F("n")}); err != nil {
		t.Fatalf("TryRd: %v", err)
	}
	srv.Shutdown()
	if got := buf.Drain(); len(got) != 0 {
		names := make([]string, len(got))
		for i, s := range got {
			names[i] = s.Name
		}
		t.Fatalf("untraced ops recorded spans: %v", names)
	}
}
