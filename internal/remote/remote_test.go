package remote

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/testkit"
	"repro/internal/tspace"
)

// startServer boots a machine/VM pair, a fabric server on it, and a
// loopback listener, all torn down with the test.
func startServer(t testing.TB) (*Server, string) {
	t.Helper()
	vm := testkit.VM(t, 2, 2)
	srv := NewServer(vm, ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(srv.Shutdown)
	return srv, ln.Addr().String()
}

func dialTest(t testing.TB, addr string, cfg DialConfig) *Client {
	t.Helper()
	c, err := Dial(nil, addr, cfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() }) //nolint:errcheck
	return c
}

func TestRemoteRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})
	sp := c.Space("jobs")

	if err := sp.Put(nil, tspace.Tuple{"point", 3, 4}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if n := sp.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	tup, b, err := sp.Rd(nil, tspace.Template{"point", tspace.F("x"), tspace.F("y")})
	if err != nil {
		t.Fatalf("Rd: %v", err)
	}
	// Integers travel as int64; matching still works because templates
	// normalize widths.
	if tup[0] != "point" || b["x"] != int64(3) || b["y"] != int64(4) {
		t.Fatalf("Rd tuple %v bindings %v", tup, b)
	}
	if n := sp.Len(); n != 1 {
		t.Fatalf("Len after Rd = %d, want 1", n)
	}
	if _, _, err := sp.Get(nil, tspace.Template{"point", 3, tspace.F("y")}); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if _, _, err := sp.TryGet(nil, tspace.Template{"point", tspace.F(""), tspace.F("")}); err != tspace.ErrNoMatch {
		t.Fatalf("TryGet on empty = %v, want ErrNoMatch", err)
	}
	if _, _, err := sp.TryRd(nil, tspace.Template{"missing"}); err != tspace.ErrNoMatch {
		t.Fatalf("TryRd = %v, want ErrNoMatch", err)
	}
	if sp.Kind() != tspace.KindRemote {
		t.Fatalf("Kind = %v", sp.Kind())
	}
	if _, err := sp.Spawn(nil); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Spawn err = %v, want ErrUnsupported", err)
	}
}

// TestRemoteBlockingGetParks is acceptance (a): a blocking Get from one
// client parks a STING thread on the server — visible in the Blocked
// gauge and the space's waiter count — until a Put from another client
// matches it.
func TestRemoteBlockingGetParks(t *testing.T) {
	srv, addr := startServer(t)
	getter := dialTest(t, addr, DialConfig{})
	putter := dialTest(t, addr, DialConfig{})

	done := make(chan error, 1)
	var got tspace.Bindings
	go func() {
		_, b, err := getter.Space("jobs").Get(nil, tspace.Template{"job", tspace.F("n")})
		got = b
		done <- err
	}()

	// The waiter must be parked server-side: a registered HB entry on the
	// space and a non-zero Blocked gauge — not an OS thread spinning.
	testkit.Eventually(t, 5*time.Second, func() bool {
		return srv.Stats().Blocked == 1
	}, "blocked gauge never rose")
	ts, ok := srv.Registry().Lookup("jobs")
	if !ok {
		t.Fatal("space not created by blocking Get")
	}
	if w := ts.(tspace.WaiterCount).Waiters(); w != 1 {
		t.Fatalf("space waiters = %d, want 1", w)
	}
	select {
	case err := <-done:
		t.Fatalf("Get returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	if err := putter.Space("jobs").Put(nil, tspace.Tuple{"job", 42}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get never unblocked after matching Put")
	}
	if got["n"] != int64(42) {
		t.Fatalf("bindings %v", got)
	}
	testkit.Eventually(t, 5*time.Second, func() bool {
		return srv.Stats().Blocked == 0
	}, "blocked gauge never drained")
}

// TestRemoteDisconnectReleasesWaiter is acceptance (b): a client that
// hangs up mid-Get must not leak its registration in the space's blocked
// table — the cancel token withdraws the parked thread.
func TestRemoteDisconnectReleasesWaiter(t *testing.T) {
	srv, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})

	done := make(chan error, 1)
	go func() {
		_, _, err := c.Space("jobs").Get(nil, tspace.Template{"job", tspace.F("n")})
		done <- err
	}()
	testkit.Eventually(t, 5*time.Second, func() bool {
		return srv.Stats().Blocked == 1
	}, "waiter never parked")

	cc := c.conns[0]
	cc.mu.Lock()
	fc := cc.fc
	cc.mu.Unlock()
	fc.Conn().Close() // abrupt hangup, no protocol goodbye

	testkit.Eventually(t, 5*time.Second, func() bool {
		s := srv.Stats()
		return s.Blocked == 0 && s.Canceled >= 1
	}, "server never withdrew the disconnected waiter")
	ts, _ := srv.Registry().Lookup("jobs")
	testkit.Eventually(t, 5*time.Second, func() bool {
		return ts.(tspace.WaiterCount).Waiters() == 0
	}, "HB registration leaked after disconnect")

	// A later Put must not be consumed by the ghost of the dead Get.
	putter := dialTest(t, addr, DialConfig{})
	if err := putter.Space("jobs").Put(nil, tspace.Tuple{"job", 7}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := putter.Space("jobs").Len(); n != 1 {
		t.Fatalf("depth after post-disconnect Put = %d, want 1", n)
	}
	<-done // the client-side call fails with a connection error; ignore which
}

// TestRemoteStatsCounters is acceptance (c): the Stats snapshot reflects
// the operations served, and it travels intact over the STATS wire op.
func TestRemoteStatsCounters(t *testing.T) {
	srv, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})
	sp := c.Space("stats-space")

	const puts, gets, trys = 5, 2, 3
	for i := 0; i < puts; i++ {
		if err := sp.Put(nil, tspace.Tuple{"n", i}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < gets; i++ {
		if _, _, err := sp.Get(nil, tspace.Template{"n", i}); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	for i := 0; i < trys; i++ {
		_, _, err := sp.TryGet(nil, tspace.Template{"absent"})
		if err != tspace.ErrNoMatch {
			t.Fatalf("TryGet: %v", err)
		}
	}

	snap, err := c.Stats(nil)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if snap.Ops["put"] != puts || snap.Ops["get"] != gets || snap.Ops["tryget"] != trys {
		t.Fatalf("ops %v, want put=%d get=%d tryget=%d", snap.Ops, puts, gets, trys)
	}
	if snap.Ops["hello"] == 0 {
		t.Fatalf("hello not counted: %v", snap.Ops)
	}
	if snap.SpaceDepths["stats-space"] != puts-gets {
		t.Fatalf("depth %v, want %d", snap.SpaceDepths, puts-gets)
	}
	if snap.ConnsActive < 1 || snap.Conns < 1 {
		t.Fatalf("conns %d active %d", snap.Conns, snap.ConnsActive)
	}
	if snap.BytesIn == 0 || snap.BytesOut == 0 {
		t.Fatalf("byte counters empty: in=%d out=%d", snap.BytesIn, snap.BytesOut)
	}
	// Wire snapshot matches the server's own view of the counters we
	// exercised (gauges and byte counts move with the STATS call itself).
	local := srv.Stats()
	for _, op := range []string{"put", "get", "tryget"} {
		if snap.Ops[op] != local.Ops[op] {
			t.Fatalf("op %s: wire %d != local %d", op, snap.Ops[op], local.Ops[op])
		}
	}
	if snap.String() == "" {
		t.Fatal("empty stats rendering")
	}
}

// TestRemoteDeadline: a blocking Get with a deadline returns the typed
// timeout error and leaves no waiter behind.
func TestRemoteDeadline(t *testing.T) {
	srv, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})

	start := time.Now()
	_, _, err := c.Space("jobs").Deadline(80*time.Millisecond).
		Get(nil, tspace.Template{"job", tspace.F("n")})
	if err == nil {
		t.Fatal("deadline Get succeeded on an empty space")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout match", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T, want *TimeoutError", err)
	}
	if !te.Timeout() || te.Space != "jobs" || te.Op != "get" {
		t.Fatalf("timeout error fields: %+v", te)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("returned after %v, before the deadline", elapsed)
	}
	testkit.Eventually(t, 5*time.Second, func() bool {
		s := srv.Stats()
		return s.Timeouts == 1 && s.Blocked == 0
	}, "timeout not accounted / waiter leaked")
	ts, _ := srv.Registry().Lookup("jobs")
	if w := ts.(tspace.WaiterCount).Waiters(); w != 0 {
		t.Fatalf("waiters = %d after timeout", w)
	}
}

// TestRemoteShutdownDrains: Shutdown withdraws parked waiters with a
// shutdown error rather than leaving clients hanging.
func TestRemoteShutdownDrains(t *testing.T) {
	srv, addr := startServer(t)
	c := dialTest(t, addr, DialConfig{})

	done := make(chan error, 1)
	go func() {
		_, _, err := c.Space("jobs").Get(nil, tspace.Template{"job"})
		done <- err
	}()
	testkit.Eventually(t, 5*time.Second, func() bool {
		return srv.Stats().Blocked == 1
	}, "waiter never parked")

	srv.Shutdown()
	select {
	case err := <-done:
		// Either the shutdown error arrived, or the connection died first;
		// both are drains, silence is the failure mode.
		if err == nil {
			t.Fatal("Get succeeded during shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get hung through server shutdown")
	}
}

// TestRemoteFromSTINGThread drives the client from substrate threads: the
// response wait must park via BlockUntil, not stall the VP — with VPs==1
// a stalled VP would deadlock the matching Put thread.
func TestRemoteFromSTINGThread(t *testing.T) {
	_, addr := startServer(t)
	vm := testkit.VM(t, 1, 1) // one VP: any VP-stalling wait deadlocks
	c := dialTest(t, addr, DialConfig{})
	sp := c.Space("pipe")

	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		getter := ctx.Fork(func(cc *core.Context) ([]core.Value, error) {
			_, b, err := sp.Get(cc, tspace.Template{"msg", tspace.F("v")})
			if err != nil {
				return nil, err
			}
			return []core.Value{b["v"]}, nil
		}, nil)
		if err := sp.Put(ctx, tspace.Tuple{"msg", "hi"}); err != nil {
			return err
		}
		v, err := ctx.Value1(getter)
		if err != nil {
			return err
		}
		if v != "hi" {
			t.Errorf("value %v", v)
		}
		return nil
	})
}
