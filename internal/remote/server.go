package remote

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sio"
	"repro/internal/tspace"
)

// ServerConfig parameterizes the fabric server.
type ServerConfig struct {
	// WriteTimeout bounds one response write so a stalled client cannot
	// wedge a VP (default 10s).
	WriteTimeout time.Duration
	// Registry supplies the named spaces; nil creates a fresh registry of
	// hash spaces.
	Registry *tspace.Registry
	// DisableMetrics turns off the per-op latency histograms (the
	// observability-overhead ablation switch; counters stay on).
	DisableMetrics bool
	// MaxVersion caps the protocol version HELLO negotiates (default
	// protocolVersion); interop tests use it to impersonate older servers.
	MaxVersion byte
	// RouteCheck, when set, vets each data op against the cluster routing
	// policy before execution: tuple is non-nil for Put, template for the
	// matching ops. Returning a *RedirectError answers the client with a
	// typed redirect (codeRedirect) naming the owning shard; any other
	// error answers as internal. The substrate stays policy-free — the
	// cluster layer supplies the check (cluster.SelfCheck). Batched Puts
	// are vetted per entry, so one misrouted tuple fails alone.
	RouteCheck func(space string, tuple tspace.Tuple, template tspace.Template) error
}

// Server serves a registry of named tuple spaces over TCP. Every request
// runs as a STING thread on the server's VM: decoding happens on the
// connection's call-back goroutine, but the tuple-space operation — and
// any blocking it entails — happens on substrate threads parked through
// the ordinary block/wakeup machinery. Disconnects and shutdown withdraw
// parked waiters through tspace.CancelToken, so no registration outlives
// its connection.
//
// Requests pipeline freely: the reader dispatches each frame to its own
// thread without waiting for earlier responses, so a parked blocking Get
// never head-of-line-blocks the ops queued behind it, and responses go
// out in completion order (the request id pairs them up client-side).
type Server struct {
	vm    *core.VM
	reg   *tspace.Registry
	cfg   ServerConfig
	stats Stats

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*serverConn]struct{}
	closed atomic.Bool

	ops sync.WaitGroup // in-flight request threads
}

// NewServer creates a server for vm. The VM's policy managers schedule the
// request threads; pick them as you would for any workload (a worker-farm
// global FIFO suits uniform request streams).
func NewServer(vm *core.VM, cfg ServerConfig) *Server {
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = tspace.NewRegistry(tspace.KindHash, tspace.Config{})
	}
	if cfg.MaxVersion == 0 || cfg.MaxVersion > protocolVersion {
		cfg.MaxVersion = protocolVersion
	}
	s := &Server{
		vm:    vm,
		reg:   cfg.Registry,
		cfg:   cfg,
		conns: make(map[*serverConn]struct{}),
	}
	if !cfg.DisableMetrics {
		s.stats.initLatency()
	}
	s.stats.initPipeline()
	return s
}

// Registry returns the server's space registry.
func (s *Server) Registry() *tspace.Registry { return s.reg }

// Stats snapshots the server counters and space depths.
func (s *Server) Stats() StatsSnapshot {
	return s.stats.Snapshot(s.reg.Depths())
}

// maxAnnouncedPool reports the largest connection-pool size any live
// client has announced (ANNOUNCE, version ≥4); 0 when none has.
func (s *Server) maxAnnouncedPool() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	largest := 0
	for sc := range s.conns {
		if n := int(sc.poolSize.Load()); n > largest {
			largest = n
		}
	}
	return largest
}

// ParkedOp describes one blocking request currently parked server-side —
// who is waiting (which connection), on what (op and space), since when.
// The runtime diagnoser folds these into /debug/diag.
type ParkedOp struct {
	Conn  string
	Op    string
	Space string
	Since time.Time
}

// Parked snapshots every blocking op currently parked on the server.
func (s *Server) Parked() []ParkedOp {
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	var out []ParkedOp
	for _, sc := range conns {
		addr := ""
		if c := sc.fc.Conn(); c != nil && c.RemoteAddr() != nil {
			addr = c.RemoteAddr().String()
		}
		sc.mu.Lock()
		for _, pt := range sc.tokens {
			out = append(out, ParkedOp{Conn: addr, Op: opName(pt.op), Space: pt.space, Since: pt.since})
		}
		sc.mu.Unlock()
	}
	return out
}

// Serve accepts connections on ln until Shutdown (or a listener error).
// It blocks; run it on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrShutdown
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.addConn(c)
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server: stop accepting, withdraw every parked
// waiter with ErrShutdown (clients receive a shutdown error, not silence),
// wait for in-flight request threads, then close the connections.
func (s *Server) Shutdown() {
	if s.closed.Swap(true) {
		return
	}
	s.mu.Lock()
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, sc := range conns {
		sc.cancelAll(ErrShutdown)
	}
	s.ops.Wait()
	for _, sc := range conns {
		sc.close()
	}
}

func (s *Server) addConn(c net.Conn) {
	sc := &serverConn{
		s:      s,
		fc:     sio.NewFrameConn(c, maxFrame, s.cfg.WriteTimeout),
		tokens: make(map[uint32]parkedToken),
	}
	sc.version.Store(minProtocolVersion) // until HELLO negotiates
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		c.Close()
		return
	}
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	s.stats.Conns.Add(1)
	s.stats.ConnsActive.Add(1)
	// Pooled reads: the frame buffer is recycled after the call-back
	// returns; decodeRequest deep-copies everything it retains.
	sc.fc.StartPooled(func(frame []byte, err error) {
		if err != nil {
			sc.teardown()
			return
		}
		s.stats.BytesIn.Add(uint64(len(frame)) + 4)
		s.handleFrame(sc, frame)
	})
}

func (s *Server) removeConn(sc *serverConn) {
	s.mu.Lock()
	_, present := s.conns[sc]
	delete(s.conns, sc)
	s.mu.Unlock()
	if present {
		s.stats.ConnsActive.Add(-1)
	}
}

// handleFrame runs on the connection's reader goroutine: decode, then hand
// the operation to a STING thread. Protocol errors answer best-effort and
// close the connection — a malformed peer gets no second frame. Service
// latency is measured from frame arrival to response completion, so
// blocking ops include their park time — the latency a client observes.
func (s *Server) handleFrame(sc *serverConn, frame []byte) {
	t0 := time.Now()
	req, err := decodeRequest(frame)
	if err != nil {
		s.stats.ProtoErrors.Add(1)
		sc.send(encodeErrResp(req.id, codeProtocol, err.Error()))
		sc.teardown()
		return
	}
	s.stats.serve(req.op)
	switch req.op {
	case opHello:
		v := req.version
		if v > s.cfg.MaxVersion {
			v = s.cfg.MaxVersion
		}
		sc.version.Store(uint32(v))
		sc.sendPooled(appendOK(sio.GetBuf()[:sio.PrefixLen], req.id, req.version, s.cfg.MaxVersion))
		s.stats.observe(req.op, time.Since(t0))
		return
	case opCancel:
		// Fire-and-forget, handled on the reader so a cancel never queues
		// behind the op it targets.
		sc.cancelID(req.target)
		return
	case opAnnounce:
		// Fire-and-forget capability note; remembered for the pool-size
		// gauge, no response.
		sc.poolSize.Store(req.poolSize)
		return
	}
	if s.closed.Load() {
		sc.sendErr(req.id, codeShutdown, ErrShutdown.Error())
		return
	}
	// Depth is sampled at dispatch: how many requests this connection had
	// in flight when the frame arrived (1 = strict request/response, more
	// = the client is pipelining).
	depth := sc.inflight.Add(1)
	if h := s.stats.PipelineDepth; h != nil {
		h.Observe(float64(depth))
	}
	// A propagated trace context opens a server span measured from frame
	// arrival, so it covers queueing and — for blocking ops — park time:
	// the latency the client's span observes. The request thread inherits
	// the span's context, making in-process work it forks children of it.
	var span *obs.Span
	if req.hasTrace {
		span = obs.StartSpanAt(obs.SpanContext{Trace: req.trace, Span: req.parentSpan},
			"server/"+opName(req.op), obs.SpanServer, t0.UnixNano())
		span.SetAttr("space", req.space)
	}
	s.ops.Add(1)
	s.vm.Spawn(func(ctx *core.Context) ([]core.Value, error) {
		defer s.ops.Done()
		defer sc.inflight.Add(-1)
		s.serveOp(ctx, sc, req)
		span.End()
		s.stats.observe(req.op, time.Since(t0))
		return nil, nil
	}, core.WithName("stingd/"+opName(req.op)), core.WithSpanContext(span.Context()))
}

// serveOp executes one decoded request on a STING thread.
func (s *Server) serveOp(ctx *core.Context, sc *serverConn, req request) {
	switch req.op {
	case opStats:
		sc.send(encodeStatsResp(req.id, s.Stats()))
		return
	case opLen:
		sc.sendPooled(appendLenResp(sio.GetBuf()[:sio.PrefixLen], req.id, s.reg.OpenDefault(req.space).Len()))
		return
	case opTxnCommit:
		s.serveTxnCommit(ctx, sc, req)
		return
	case opBatch:
		s.serveBatch(ctx, sc, req)
		return
	}
	if rc := s.cfg.RouteCheck; rc != nil {
		var rerr error
		switch req.op {
		case opPut:
			rerr = rc(req.space, req.tuple, nil)
		case opGet, opRd, opTryGet, opTryRd:
			rerr = rc(req.space, nil, req.template)
		}
		if rerr != nil {
			var re *RedirectError
			if errors.As(rerr, &re) {
				s.stats.Redirects.Add(1)
				sc.sendErr(req.id, codeRedirect, redirectMessage(re))
			} else {
				sc.sendErr(req.id, codeInternal, rerr.Error())
			}
			return
		}
	}
	ts := s.reg.OpenDefault(req.space)
	switch req.op {
	case opPut:
		if err := ts.Put(ctx, req.tuple); err != nil {
			sc.sendErr(req.id, codeInternal, err.Error())
			return
		}
		sc.sendOK(req.id)
	case opTryGet, opTryRd:
		var tup tspace.Tuple
		var bind tspace.Bindings
		var err error
		if req.op == opTryGet {
			tup, bind, err = ts.TryGet(ctx, req.template)
		} else {
			tup, bind, err = ts.TryRd(ctx, req.template)
		}
		sc.sendMatch(req, tup, bind, err)
	case opGet, opRd:
		s.serveBlocking(ctx, sc, req, ts)
	default:
		sc.sendErr(req.id, codeUnknownOp, "unknown op")
	}
}

// serveBatch applies one BATCH frame: every entry is route-checked and
// deposited independently, and the single respBatch reply carries one
// status per entry — a misrouted or unstorable tuple fails alone instead
// of poisoning its neighbours. One thread serves the whole frame: hash-
// space Puts never block, so there is nothing to park per entry.
func (s *Server) serveBatch(ctx *core.Context, sc *serverConn, req request) {
	sts := make([]batchStatus, len(req.batch))
	applied := 0
	for i, e := range req.batch {
		if rc := s.cfg.RouteCheck; rc != nil {
			if rerr := rc(e.space, e.tuple, nil); rerr != nil {
				var re *RedirectError
				if errors.As(rerr, &re) {
					s.stats.Redirects.Add(1)
					sts[i] = batchStatus{code: codeRedirect, msg: redirectMessage(re)}
				} else {
					sts[i] = batchStatus{code: codeInternal, msg: rerr.Error()}
				}
				continue
			}
		}
		if err := s.reg.OpenDefault(e.space).Put(ctx, e.tuple); err != nil {
			sts[i] = batchStatus{code: codeInternal, msg: err.Error()}
			continue
		}
		applied++
	}
	if h := s.stats.BatchSize; h != nil {
		h.Observe(float64(len(req.batch)))
	}
	s.stats.BatchPuts.Add(uint64(applied))
	sc.sendPooled(appendBatchResp(sio.GetBuf()[:sio.PrefixLen], req.id, sts))
}

// serveTxnCommit applies a whole buffered transaction log atomically: the
// wire half of the STM subsystem. Every op is route-checked (a cluster
// transaction must have been routed to the shard owning every key), every
// named space must support transactions, and validation failures answer
// codeConflict so the client's Atomic loop retries its body.
func (s *Server) serveTxnCommit(ctx *core.Context, sc *serverConn, req request) {
	if rc := s.cfg.RouteCheck; rc != nil {
		for _, op := range req.txnOps {
			rerr := rc(op.Space, op.Tup, nil)
			if rerr == nil {
				continue
			}
			var re *RedirectError
			if errors.As(rerr, &re) {
				s.stats.Redirects.Add(1)
				sc.sendErr(req.id, codeRedirect, redirectMessage(re))
			} else {
				sc.sendErr(req.id, codeInternal, rerr.Error())
			}
			return
		}
	}
	cops := make([]tspace.CommitOp, 0, len(req.txnOps))
	for _, op := range req.txnOps {
		ts := s.reg.OpenDefault(op.Space)
		txs, ok := ts.(tspace.TxnSpace)
		if !ok {
			sc.sendErr(req.id, codeUnsupported,
				fmt.Sprintf("space %q (%s) does not support transactions", op.Space, ts.Kind()))
			return
		}
		cops = append(cops, tspace.CommitOp{
			Space: txs, Name: op.Space, Kind: op.Kind, Ver: op.Ver, Tup: op.Tup,
		})
	}
	if err := tspace.ApplyCommit(ctx, cops); err != nil {
		var ce *tspace.ConflictError
		if errors.As(err, &ce) {
			msg := ce.Detail
			if ce.Space != "" {
				msg = ce.Space + ": " + ce.Detail
			}
			sc.sendErr(req.id, codeConflict, msg)
		} else {
			sc.sendErr(req.id, codeInternal, err.Error())
		}
		return
	}
	sc.sendOK(req.id)
}

// serveBlocking runs a Get/Rd that may park the thread. The cancel token
// is registered with the connection so a disconnect withdraws the waiter;
// a deadline arms a timer that cancels with a timeout reason.
func (s *Server) serveBlocking(ctx *core.Context, sc *serverConn, req request, ts tspace.TupleSpace) {
	tok := tspace.NewCancelToken()
	if !sc.addToken(req.id, tok, req.op, req.space) {
		return // connection already gone; nobody to answer
	}
	defer sc.removeToken(req.id)
	var timedOut atomic.Bool
	if req.deadline > 0 {
		timer := time.AfterFunc(req.deadline, func() {
			timedOut.Store(true)
			tok.Cancel(ErrTimeout)
		})
		defer timer.Stop()
	}
	s.stats.Blocked.Add(1)
	var tup tspace.Tuple
	var bind tspace.Bindings
	var err error
	tspace.WithCancel(ctx, tok, func() {
		if req.op == opGet {
			tup, bind, err = ts.Get(ctx, req.template)
		} else {
			tup, bind, err = ts.Rd(ctx, req.template)
		}
	})
	s.stats.Blocked.Add(-1)
	switch {
	case err == nil:
		sc.sendMatch(req, tup, bind, nil)
	case timedOut.Load() || err == ErrTimeout:
		s.stats.Timeouts.Add(1)
		sc.sendErr(req.id, codeTimeout,
			(&TimeoutError{Op: opName(req.op), Space: req.space, Deadline: req.deadline}).Error())
	case err == ErrDisconnected:
		s.stats.Canceled.Add(1) // client gone; no reply possible
	case err == ErrCanceled:
		s.stats.Canceled.Add(1) // withdrawn by the client's CANCEL frame
		sc.sendErr(req.id, codeCanceled, ErrCanceled.Error())
	case err == ErrShutdown:
		s.stats.Canceled.Add(1)
		sc.sendErr(req.id, codeShutdown, ErrShutdown.Error())
	default:
		sc.sendMatch(req, nil, nil, err)
	}
}

// serverConn tracks one client connection and its in-flight blocking ops.
type serverConn struct {
	s  *Server
	fc *sio.FrameConn

	// version is the protocol version negotiated at HELLO; responses that
	// carry a version byte echo it so version-1 clients keep decoding.
	version atomic.Uint32

	// inflight counts dispatched requests not yet answered — the sample
	// the pipeline-depth histogram records at each arrival.
	inflight atomic.Int64

	// poolSize is the connection-pool size the client announced (0 until
	// an ANNOUNCE arrives).
	poolSize atomic.Uint32

	mu          sync.Mutex
	tokens      map[uint32]parkedToken
	precanceled map[uint32]struct{}
	gone        bool
}

// parkedToken pairs a blocking op's cancel token with what the op is —
// the introspection the runtime diagnoser reports as "remote parks".
type parkedToken struct {
	tok   *tspace.CancelToken
	op    byte
	space string
	since time.Time
}

// maxPrecanceled bounds remembered ahead-of-target cancels so a client
// spraying CANCEL frames for ids it never uses cannot grow the set.
const maxPrecanceled = 1024

// addToken registers a blocking op; false means the connection is gone.
// A cancel that raced ahead of the registration fires the token now.
func (sc *serverConn) addToken(id uint32, tok *tspace.CancelToken, op byte, space string) bool {
	sc.mu.Lock()
	if sc.gone {
		sc.mu.Unlock()
		return false
	}
	sc.tokens[id] = parkedToken{tok: tok, op: op, space: space, since: time.Now()}
	_, pc := sc.precanceled[id]
	if pc {
		delete(sc.precanceled, id)
	}
	sc.mu.Unlock()
	if pc {
		tok.Cancel(ErrCanceled)
	}
	return true
}

// cancelID withdraws the blocking op with the given request id. The CANCEL
// frame and its target arrive on the same ordered stream, but the target's
// token registration happens on a spawned STING thread — a cancel decoded
// before that registration is remembered and applied in addToken.
func (sc *serverConn) cancelID(id uint32) {
	sc.mu.Lock()
	tok := sc.tokens[id].tok
	if tok == nil && !sc.gone && len(sc.precanceled) < maxPrecanceled {
		if sc.precanceled == nil {
			sc.precanceled = make(map[uint32]struct{})
		}
		sc.precanceled[id] = struct{}{}
	}
	sc.mu.Unlock()
	if tok != nil {
		tok.Cancel(ErrCanceled)
	}
}

func (sc *serverConn) removeToken(id uint32) {
	sc.mu.Lock()
	delete(sc.tokens, id)
	sc.mu.Unlock()
}

// cancelAll withdraws every parked waiter of this connection.
func (sc *serverConn) cancelAll(reason error) {
	sc.mu.Lock()
	toks := make([]*tspace.CancelToken, 0, len(sc.tokens))
	for _, t := range sc.tokens {
		toks = append(toks, t.tok)
	}
	sc.mu.Unlock()
	for _, t := range toks {
		t.Cancel(reason)
	}
}

// teardown handles a dead connection: mark gone, withdraw waiters, close.
func (sc *serverConn) teardown() {
	sc.mu.Lock()
	already := sc.gone
	sc.gone = true
	sc.mu.Unlock()
	if already {
		return
	}
	sc.cancelAll(ErrDisconnected)
	sc.s.removeConn(sc)
	sc.fc.Close()
}

func (sc *serverConn) close() { sc.teardown() }

// send writes a response frame, counting bytes; write errors tear the
// connection down (the reader call-back finishes the cleanup). Cold paths
// only — the hot paths go through sendPooled.
func (sc *serverConn) send(frame []byte) {
	if err := sc.fc.WriteFrame(frame); err != nil {
		sc.teardown()
		return
	}
	sc.s.stats.BytesOut.Add(uint64(len(frame)) + 4)
}

// sendPooled writes a response assembled in a pooled buffer (sio.GetBuf
// with sio.PrefixLen reserved) and returns the buffer to the pool.
func (sc *serverConn) sendPooled(frame []byte) {
	err := sc.fc.WriteFramePrefixed(frame)
	n := len(frame)
	sio.PutBuf(frame)
	if err != nil {
		sc.teardown()
		return
	}
	sc.s.stats.BytesOut.Add(uint64(n)) // includes the length prefix
}

// sendOK answers with the negotiated-version OK frame.
func (sc *serverConn) sendOK(id uint32) {
	sc.sendPooled(appendOK(sio.GetBuf()[:sio.PrefixLen], id, byte(sc.version.Load()), sc.s.cfg.MaxVersion))
}

// sendErr answers with a typed wire error.
func (sc *serverConn) sendErr(id uint32, code byte, msg string) {
	sc.sendPooled(appendErrResp(sio.GetBuf()[:sio.PrefixLen], id, code, msg))
}

// sendMatch renders a (tuple, bindings, error) triple as a response.
func (sc *serverConn) sendMatch(req request, tup tspace.Tuple, bind tspace.Bindings, err error) {
	switch {
	case err == nil:
		buf := sio.GetBuf()[:sio.PrefixLen]
		frame, encErr := appendTupleResp(buf, req.id, tup, bind)
		if encErr != nil {
			// The matched tuple holds process-local values (threads); it
			// cannot travel. Report rather than drop silently.
			sio.PutBuf(buf)
			sc.sendErr(req.id, codeUnsupported, encErr.Error())
			return
		}
		sc.sendPooled(frame)
	case err == tspace.ErrNoMatch:
		sc.sendPooled(appendRespHeader(sio.GetBuf()[:sio.PrefixLen], respNoMatch, req.id))
	default:
		sc.sendErr(req.id, codeInternal, err.Error())
	}
}
