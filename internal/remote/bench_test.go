package remote

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tspace"
)

// BenchmarkRemoteTuplePingPong measures one fabric round trip: a remote
// Put answered by a server-side STING echo thread, collected with a remote
// blocking Get. Compare with the in-process tuple ops in internal/bench's
// Fig. 6 table to see the wire's cost.
func BenchmarkRemoteTuplePingPong(b *testing.B) {
	srv, addr := startServer(b)
	ts := srv.Registry().OpenDefault("pingpong")
	echo := srv.vm.Spawn(func(ctx *core.Context) ([]core.Value, error) {
		for {
			_, bind, err := ts.Get(ctx, tspace.Template{"ping", tspace.F("n")})
			if err != nil {
				return nil, err
			}
			if bind["n"].(int64) < 0 {
				return nil, nil
			}
			if err := ts.Put(ctx, tspace.Tuple{"pong", bind["n"]}); err != nil {
				return nil, err
			}
		}
	}, core.WithName("echo"))

	c := dialTest(b, addr, DialConfig{})
	sp := c.Space("pingpong")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := int64(i)
		if err := sp.Put(nil, tspace.Tuple{"ping", n}); err != nil {
			b.Fatalf("Put: %v", err)
		}
		if _, _, err := sp.Get(nil, tspace.Template{"pong", n}); err != nil {
			b.Fatalf("Get: %v", err)
		}
	}
	b.StopTimer()
	if err := sp.Put(nil, tspace.Tuple{"ping", int64(-1)}); err != nil {
		b.Fatalf("sentinel Put: %v", err)
	}
	if _, err := core.JoinThread(echo); err != nil {
		b.Fatalf("echo: %v", err)
	}
}
