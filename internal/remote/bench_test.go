package remote

import (
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/sio"
	"repro/internal/testkit"
	"repro/internal/tspace"
)

// benchPingPong measures one fabric round trip: a remote Put answered by a
// server-side STING echo thread, collected with a remote blocking Get.
// Compare with the in-process tuple ops in internal/bench's Fig. 6 table
// to see the wire's cost.
func benchPingPong(b *testing.B, cfg ServerConfig) {
	vm := testkit.VM(b, 2, 2)
	srv := NewServer(vm, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck
	b.Cleanup(srv.Shutdown)
	addr := ln.Addr().String()

	ts := srv.Registry().OpenDefault("pingpong")
	echo := srv.vm.Spawn(func(ctx *core.Context) ([]core.Value, error) {
		for {
			_, bind, err := ts.Get(ctx, tspace.Template{"ping", tspace.F("n")})
			if err != nil {
				return nil, err
			}
			if bind["n"].(int64) < 0 {
				return nil, nil
			}
			if err := ts.Put(ctx, tspace.Tuple{"pong", bind["n"]}); err != nil {
				return nil, err
			}
		}
	}, core.WithName("echo"))

	c := dialTest(b, addr, DialConfig{})
	sp := c.Space("pingpong")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := int64(i)
		if err := sp.Put(nil, tspace.Tuple{"ping", n}); err != nil {
			b.Fatalf("Put: %v", err)
		}
		if _, _, err := sp.Get(nil, tspace.Template{"pong", n}); err != nil {
			b.Fatalf("Get: %v", err)
		}
	}
	b.StopTimer()
	if err := sp.Put(nil, tspace.Tuple{"ping", int64(-1)}); err != nil {
		b.Fatalf("sentinel Put: %v", err)
	}
	if _, err := core.JoinThread(echo); err != nil {
		b.Fatalf("echo: %v", err)
	}
}

// BenchmarkRemoteTuplePingPong runs the ping-pong with the per-op latency
// histograms armed (the default); its NoObs twin below is the ablation
// baseline for the metric-collection overhead entry in EXPERIMENTS.md.
func BenchmarkRemoteTuplePingPong(b *testing.B) {
	benchPingPong(b, ServerConfig{})
}

// BenchmarkRemoteTuplePingPongNoObs is the same round trip with metric
// recording disabled server-side.
func BenchmarkRemoteTuplePingPongNoObs(b *testing.B) {
	benchPingPong(b, ServerConfig{DisableMetrics: true})
}

// Codec hot-path benchmarks, run with -benchmem: the zero-alloc-codec
// acceptance gate is 0 allocs/op on encode (pooled buffer, in-place
// length prefix) and ≤2 allocs/op on decode (the tuple slice plus its one
// string element; the space name is interned, immediates under 256 box
// free).

// BenchmarkCodecEncodePut encodes a PUT frame into a pooled buffer — the
// exact sequence the client's write path runs per op.
func BenchmarkCodecEncodePut(b *testing.B) {
	req := request{op: opPut, id: 7, space: "jobs", tuple: tspace.Tuple{"job", int64(42), true}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := sio.GetBuf()[:sio.PrefixLen]
		frame, err := appendRequest(buf, req)
		if err != nil {
			b.Fatal(err)
		}
		sio.PutBuf(frame)
	}
}

// BenchmarkCodecDecodePut decodes the same PUT frame — the sequence the
// server's reader runs per arriving op.
func BenchmarkCodecDecodePut(b *testing.B) {
	frame, err := encodeRequest(request{op: opPut, id: 7, space: "jobs",
		tuple: tspace.Tuple{"job", int64(42), true}})
	if err != nil {
		b.Fatal(err)
	}
	internName([]byte("jobs")) // steady state: the space name is known
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeRequest(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecDecodeTupleResp decodes a matched-tuple response with no
// bindings — the client-side hot path for ground-template Get/Rd.
func BenchmarkCodecDecodeTupleResp(b *testing.B) {
	frame, err := encodeTupleResp(7, tspace.Tuple{"job", int64(42), true}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeResponse(frame); err != nil {
			b.Fatal(err)
		}
	}
}
