// Package streams implements the user-defined synchronizing stream
// abstraction the paper's sieve example is written against (Fig. 2): a
// blocking head operation (hd), an atomic append (attach), rest, and
// end-of-stream. Streams demonstrate that STING imposes no a-priori
// synchronization protocol on threads — coordination abstractions like this
// one are ordinary library code over mutexes and thread parks.
package streams

import (
	"errors"
	"sync"

	"repro/internal/core"
)

// ErrClosed is returned when reading past the end of a closed stream.
var ErrClosed = errors.New("streams: end of stream")

// Stream is an immutable-prefix, append-only sequence. A Stream value
// denotes a position; Rest returns the next position. Readers block in hd
// until a writer attaches an element at their position.
type Stream struct {
	s   *shared
	pos int
}

type shared struct {
	mu      sync.Mutex
	items   []core.Value
	closed  bool
	waiters []*cell
}

type cell struct {
	tcb  *core.TCB
	pos  int
	woke bool
}

// New creates an empty stream (make-stream).
func New() *Stream { return &Stream{s: &shared{}} }

// Attach atomically appends v to the end of the stream and wakes readers
// blocked at that position.
func (st *Stream) Attach(v core.Value) {
	s := st.s
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("streams: attach to closed stream")
	}
	s.items = append(s.items, v)
	n := len(s.items)
	var wake []*cell
	rest := s.waiters[:0]
	for _, c := range s.waiters {
		if c.pos < n {
			c.woke = true
			wake = append(wake, c)
		} else {
			rest = append(rest, c)
		}
	}
	s.waiters = rest
	s.mu.Unlock()
	for _, c := range wake {
		core.WakeTCB(c.tcb)
	}
}

// Close marks the end of the stream; blocked readers observe ErrClosed.
func (st *Stream) Close() {
	s := st.s
	s.mu.Lock()
	s.closed = true
	wake := s.waiters
	s.waiters = nil
	for _, c := range wake {
		c.woke = true
	}
	s.mu.Unlock()
	for _, c := range wake {
		core.WakeTCB(c.tcb)
	}
}

// Hd returns the element at this position, blocking until a writer
// attaches one (hd). Reading past a closed stream returns ErrClosed.
func (st *Stream) Hd(ctx *core.Context) (core.Value, error) {
	s := st.s
	for {
		s.mu.Lock()
		if st.pos < len(s.items) {
			v := s.items[st.pos]
			s.mu.Unlock()
			return v, nil
		}
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		c := &cell{tcb: ctx.TCB(), pos: st.pos}
		s.waiters = append(s.waiters, c)
		s.mu.Unlock()
		ctx.BlockUntil(func() bool {
			s.mu.Lock()
			ok := c.woke || st.pos < len(s.items) || s.closed
			s.mu.Unlock()
			return ok
		})
	}
}

// TryHd returns the element at this position without blocking.
func (st *Stream) TryHd() (core.Value, bool, error) {
	s := st.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.pos < len(s.items) {
		return s.items[st.pos], true, nil
	}
	if s.closed {
		return nil, false, ErrClosed
	}
	return nil, false, nil
}

// Rest returns the stream position after this one (rest). It does not
// block; the element need not exist yet.
func (st *Stream) Rest() *Stream { return &Stream{s: st.s, pos: st.pos + 1} }

// Len returns how many elements have been attached so far.
func (st *Stream) Len() int {
	st.s.mu.Lock()
	defer st.s.mu.Unlock()
	return len(st.s.items)
}

// Closed reports whether the stream has been closed.
func (st *Stream) Closed() bool {
	st.s.mu.Lock()
	defer st.s.mu.Unlock()
	return st.s.closed
}

// Collect reads every remaining element until the stream closes.
func (st *Stream) Collect(ctx *core.Context) ([]core.Value, error) {
	var out []core.Value
	cur := st
	for {
		v, err := cur.Hd(ctx)
		if errors.Is(err, ErrClosed) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, v)
		cur = cur.Rest()
	}
}

// Integers produces the stream 2, 3, 4, … limit on a dedicated thread (the
// paper's make-integer-stream feeding the sieve).
func Integers(ctx *core.Context, limit int) *Stream {
	st := New()
	ctx.Fork(func(c *core.Context) ([]core.Value, error) {
		for i := 2; i <= limit; i++ {
			st.Attach(i)
			if i%64 == 0 {
				c.Poll()
			}
		}
		st.Close()
		return nil, nil
	}, nil, core.WithName("integer-stream"))
	return st
}
