package streams

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/testkit"
)

func TestAttachHd(t *testing.T) {
	vm := testkit.VM(t, 1, 1)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		st := New()
		st.Attach(1)
		st.Attach(2)
		v, err := st.Hd(ctx)
		if err != nil {
			return err
		}
		if v != 1 {
			t.Errorf("hd = %v", v)
		}
		v2, err := st.Rest().Hd(ctx)
		if err != nil {
			return err
		}
		if v2 != 2 {
			t.Errorf("second = %v", v2)
		}
		// Positions are immutable: re-reading gives the same element.
		v3, _ := st.Hd(ctx)
		if v3 != 1 {
			t.Errorf("re-read hd = %v", v3)
		}
		return nil
	})
}

func TestHdBlocksUntilAttach(t *testing.T) {
	vm := testkit.VM(t, 2, 2)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		st := New()
		reader := ctx.Fork(func(c *core.Context) ([]core.Value, error) {
			v, err := st.Hd(c)
			if err != nil {
				return nil, err
			}
			return testkit.One(v), nil
		}, vm.VP(1))
		for i := 0; i < 10; i++ {
			ctx.Yield()
		}
		if reader.Determined() {
			t.Error("hd returned before attach")
		}
		st.Attach("x")
		v, err := ctx.Value1(reader)
		if err != nil {
			return err
		}
		if v != "x" {
			t.Errorf("reader got %v", v)
		}
		return nil
	})
}

func TestCloseUnblocksReaders(t *testing.T) {
	vm := testkit.VM(t, 2, 2)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		st := New()
		reader := ctx.Fork(func(c *core.Context) ([]core.Value, error) {
			_, err := st.Hd(c)
			if errors.Is(err, ErrClosed) {
				return testkit.One("closed"), nil
			}
			return testkit.One("value"), err
		}, vm.VP(1))
		for i := 0; i < 10; i++ {
			ctx.Yield()
		}
		st.Close()
		v, err := ctx.Value1(reader)
		if err != nil {
			return err
		}
		if v != "closed" {
			t.Errorf("reader saw %v", v)
		}
		return nil
	})
}

func TestProducerConsumerPipeline(t *testing.T) {
	vm := testkit.VM(t, 4, 4)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		in := Integers(ctx, 100)
		out := New()
		// A doubling stage.
		ctx.Fork(func(c *core.Context) ([]core.Value, error) {
			cur := in
			for {
				v, err := cur.Hd(c)
				if errors.Is(err, ErrClosed) {
					out.Close()
					return nil, nil
				}
				if err != nil {
					return nil, err
				}
				out.Attach(v.(int) * 2)
				cur = cur.Rest()
			}
		}, vm.VP(1))
		vals, err := out.Collect(ctx)
		if err != nil {
			return err
		}
		if len(vals) != 99 {
			t.Fatalf("collected %d values, want 99", len(vals))
		}
		for i, v := range vals {
			if v != (i+2)*2 {
				t.Fatalf("vals[%d] = %v", i, v)
			}
		}
		return nil
	})
}

// The paper's Fig. 2 sieve, in the three concurrency flavours the paper
// derives from one abstraction: lazy (delayed threads demanded on
// extension), eager (fork-thread per filter), and stolen (delayed but
// demanded through Wait, so filters run inline).
type sieveOp func(ctx *core.Context, thunk core.Thunk)

func sieve(ctx *core.Context, op sieveOp, limit int) (*Stream, *Stream) {
	input := Integers(ctx, limit)
	primes := New()
	op(ctx, func(c *core.Context) ([]core.Value, error) {
		return filterStage(c, op, 2, input, primes)
	})
	return input, primes
}

// filterStage removes multiples of n from its input; the first element that
// survives becomes the next prime and spawns (via op) the next filter.
func filterStage(ctx *core.Context, op sieveOp, n int, input *Stream, primes *Stream) ([]core.Value, error) {
	primes.Attach(n)
	output := New()
	spawned := false
	cur := input
	for {
		v, err := cur.Hd(ctx)
		if errors.Is(err, ErrClosed) {
			output.Close()
			if !spawned {
				primes.Close()
			}
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		x := v.(int)
		if x%n != 0 {
			if !spawned {
				spawned = true
				m := x
				out := output
				op(ctx, func(c *core.Context) ([]core.Value, error) {
					return filterStage(c, op, m, out, primes)
				})
			}
			output.Attach(x)
		}
		cur = cur.Rest()
	}
}

func eagerOp(ctx *core.Context, thunk core.Thunk) {
	ctx.Fork(thunk, nil)
}

func collectPrimes(t *testing.T, procs, vps, limit int, op sieveOp) []int {
	t.Helper()
	vm := testkit.VM(t, procs, vps)
	var got []int
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		_, primes := sieve(ctx, op, limit)
		vals, err := primes.Collect(ctx)
		if err != nil {
			return err
		}
		for _, v := range vals {
			got = append(got, v.(int))
		}
		return nil
	})
	return got
}

func wantPrimes(limit int) []int {
	sieve := make([]bool, limit+1)
	var out []int
	for i := 2; i <= limit; i++ {
		if !sieve[i] {
			out = append(out, i)
			for j := i * i; j <= limit; j += i {
				sieve[j] = true
			}
		}
	}
	return out
}

func TestSieveEager(t *testing.T) {
	got := collectPrimes(t, 4, 4, 200, eagerOp)
	want := wantPrimes(200)
	if len(got) != len(want) {
		t.Fatalf("got %d primes %v, want %d", len(got), got, len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("prime[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSieveSingleVP(t *testing.T) {
	got := collectPrimes(t, 1, 1, 100, eagerOp)
	want := wantPrimes(100)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestStreamInspection(t *testing.T) {
	vm := testkit.VM(t, 1, 1)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		st := New()
		if st.Len() != 0 || st.Closed() {
			t.Error("fresh stream not empty/open")
		}
		if _, ok, err := st.TryHd(); ok || err != nil {
			t.Errorf("TryHd on empty: ok=%v err=%v", ok, err)
		}
		st.Attach("x")
		if v, ok, err := st.TryHd(); !ok || err != nil || v != "x" {
			t.Errorf("TryHd: %v %v %v", v, ok, err)
		}
		if st.Len() != 1 {
			t.Errorf("len = %d", st.Len())
		}
		st.Close()
		if !st.Closed() {
			t.Error("not closed")
		}
		// TryHd past the end of a closed stream reports ErrClosed.
		rest := st.Rest()
		if _, ok, err := rest.TryHd(); ok || !errors.Is(err, ErrClosed) {
			t.Errorf("TryHd past close: ok=%v err=%v", ok, err)
		}
		return nil
	})
}

func TestAttachAfterClosePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("attach to closed stream did not panic")
		}
	}()
	st := New()
	st.Close()
	st.Attach(1)
}
