package storage

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocAndLive(t *testing.T) {
	a := NewArea(HeapArea, 1024)
	r, err := a.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if r.IsNil() {
		t.Fatal("nil ref")
	}
	if !a.Live(r) {
		t.Fatal("fresh object not live")
	}
	if g := a.Generation(r); g != 0 {
		t.Fatalf("generation = %d, want 0", g)
	}
}

func TestScavengeReclaimsUnretained(t *testing.T) {
	a := NewArea(HeapArea, 1024)
	dead, _ := a.Alloc(64)
	kept, _ := a.Alloc(64)
	a.Retain(kept)
	a.Scavenge()
	if a.Live(dead) {
		t.Error("unretained object survived scavenge")
	}
	if !a.Live(kept) {
		t.Error("retained object reclaimed")
	}
	st := a.Stats()
	if st.Reclaimed != 1 {
		t.Errorf("Reclaimed = %d, want 1", st.Reclaimed)
	}
}

func TestScavengeTracesInternalRefs(t *testing.T) {
	a := NewArea(HeapArea, 4096)
	root, _ := a.Alloc(16)
	mid, _ := a.Alloc(16)
	leaf, _ := a.Alloc(16)
	a.Retain(root)
	a.SetRefs(root, []Ref{mid}, nil)
	a.SetRefs(mid, []Ref{leaf}, nil)
	a.Scavenge()
	for _, r := range []Ref{root, mid, leaf} {
		if !a.Live(r) {
			t.Errorf("%v reclaimed despite being reachable", r)
		}
	}
}

func TestPromotionAfterSurvivals(t *testing.T) {
	a := NewArea(HeapArea, 1024)
	r, _ := a.Alloc(32)
	a.Retain(r)
	for i := 0; i < promoteAge; i++ {
		if g := a.Generation(r); g != 0 {
			t.Fatalf("promoted too early at scavenge %d", i)
		}
		a.Scavenge()
	}
	if g := a.Generation(r); g != 1 {
		t.Fatalf("generation = %d after %d scavenges, want 1", g, promoteAge)
	}
	if st := a.Stats(); st.Promoted != 1 {
		t.Fatalf("Promoted = %d, want 1", st.Promoted)
	}
}

func TestAllocTriggersScavenge(t *testing.T) {
	a := NewArea(HeapArea, 256)
	// Fill the young generation with garbage; the next alloc must succeed
	// by scavenging it away.
	for i := 0; i < 4; i++ {
		if _, err := a.Alloc(64); err != nil {
			t.Fatalf("fill alloc %d: %v", i, err)
		}
	}
	if _, err := a.Alloc(64); err != nil {
		t.Fatalf("alloc after full young gen: %v", err)
	}
	if st := a.Stats(); st.Scavenges == 0 {
		t.Fatal("no scavenge ran")
	}
}

func TestExhaustion(t *testing.T) {
	a := NewArea(HeapArea, 128)
	refs := make([]Ref, 0, 8)
	var sawErr bool
	for i := 0; i < 64; i++ {
		r, err := a.Alloc(64)
		if err != nil {
			if !errors.Is(err, ErrExhausted) {
				t.Fatalf("wrong error: %v", err)
			}
			sawErr = true
			break
		}
		a.Retain(r) // keep everything live: promotion then exhaustion
		refs = append(refs, r)
	}
	if !sawErr {
		t.Fatalf("area never exhausted; allocated %d refs", len(refs))
	}
}

func TestRememberedSetActsAsRoot(t *testing.T) {
	a := NewArea(HeapArea, 1024)
	b := NewArea(HeapArea, 1024)
	resolve := func(id uint32) *Area {
		switch id {
		case a.ID():
			return a
		case b.ID():
			return b
		}
		return nil
	}
	holder, _ := a.Alloc(16)
	target, _ := b.Alloc(16)
	a.Retain(holder)
	// holder (area a) references target (area b): the cross-area ref must
	// keep target alive through b's independent scavenge.
	a.SetRefs(holder, []Ref{target}, resolve)
	b.Scavenge()
	if !b.Live(target) {
		t.Fatal("cross-area referenced object reclaimed")
	}
	if st := b.Stats(); st.InterAreaRefs != 1 {
		t.Fatalf("InterAreaRefs = %d, want 1", st.InterAreaRefs)
	}
	// Dropping the remembered entry makes it collectable again.
	b.Forget(a.ID(), target)
	b.Scavenge()
	if b.Live(target) {
		t.Fatal("object survived after remembered entry dropped")
	}
}

func TestIndependentScavenges(t *testing.T) {
	a := NewArea(HeapArea, 1024)
	b := NewArea(HeapArea, 1024)
	ra, _ := a.Alloc(16)
	rb, _ := b.Alloc(16)
	a.Retain(ra)
	b.Retain(rb)
	a.Scavenge() // must not touch b
	if sb := b.Stats(); sb.Scavenges != 0 {
		t.Fatal("scavenging a touched b")
	}
	if !b.Live(rb) {
		t.Fatal("b's object disturbed")
	}
}

func TestResetRecycles(t *testing.T) {
	a := NewArea(StackArea, 1024)
	r, _ := a.Alloc(100)
	a.Retain(r)
	a.Reset()
	if a.Live(r) {
		t.Fatal("object survived reset")
	}
	if u := a.Used(0); u != 0 {
		t.Fatalf("used = %d after reset", u)
	}
	if st := a.Stats(); st.Recycles != 1 {
		t.Fatalf("Recycles = %d, want 1", st.Recycles)
	}
	if _, err := a.Alloc(64); err != nil {
		t.Fatalf("alloc after reset: %v", err)
	}
}

func TestPoolRecyclesPairs(t *testing.T) {
	p := NewPool(512, 512, 2)
	p1 := p.Get()
	p2 := p.Get()
	if p1 == p2 {
		t.Fatal("same pair served twice")
	}
	p.Put(p1)
	p3 := p.Get()
	if p3 != p1 {
		t.Fatal("pool did not recycle the returned pair")
	}
	hits, misses := p.HitsMisses()
	if hits != 1 || misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", hits, misses)
	}
	_ = p2
}

func TestPoolLimit(t *testing.T) {
	p := NewPool(256, 256, 1)
	a1, a2 := p.Get(), p.Get()
	p.Put(a1)
	p.Put(a2) // beyond limit: dropped
	if c := p.Cached(); c != 1 {
		t.Fatalf("cached = %d, want 1", c)
	}
}

// Property: for any mix of retained and garbage objects, a scavenge keeps
// exactly the retained ones (no internal refs involved).
func TestScavengePreservesExactlyRetained(t *testing.T) {
	f := func(keepMask []bool) bool {
		if len(keepMask) > 40 {
			keepMask = keepMask[:40]
		}
		a := NewArea(HeapArea, 1<<20)
		refs := make([]Ref, len(keepMask))
		for i := range keepMask {
			r, err := a.Alloc(8)
			if err != nil {
				return false
			}
			refs[i] = r
			if keepMask[i] {
				a.Retain(r)
			}
		}
		a.Scavenge()
		for i, r := range refs {
			if a.Live(r) != keepMask[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: allocation accounting never loses bytes — used(young)+used(old)
// equals the sum of live object sizes after any scavenge.
func TestUsageAccounting(t *testing.T) {
	f := func(sizes []uint8, keep []bool) bool {
		a := NewArea(HeapArea, 1<<20)
		var live uint64
		for i, s := range sizes {
			if i >= len(keep) {
				break
			}
			sz := uint32(s%63) + 1
			r, err := a.Alloc(sz)
			if err != nil {
				return false
			}
			if keep[i] {
				a.Retain(r)
				live += uint64(sz)
			}
		}
		a.Scavenge()
		return a.Used(0)+a.Used(1) == live
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
