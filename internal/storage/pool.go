package storage

import "sync"

// AreaPair bundles the stack and heap areas that make up one thread's
// dynamic storage. The pair is the unit of recycling: when a thread
// terminates, its pair is returned to the owning VP's pool and handed whole
// to the next thread that starts there, keeping the storage in that
// processor's working set ("storage for running threads are cached on VPs
// and recycled for immediate reuse when a thread terminates").
type AreaPair struct {
	Stack *Area
	Heap  *Area
}

// NewAreaPair allocates a fresh stack/heap pair.
func NewAreaPair(stackBytes, heapBytes uint64) *AreaPair {
	return &AreaPair{
		Stack: NewArea(StackArea, stackBytes),
		Heap:  NewArea(HeapArea, heapBytes),
	}
}

// Reset prepares the pair for reuse by a new thread.
func (p *AreaPair) Reset() {
	p.Stack.Reset()
	p.Heap.Reset()
}

// Pool is a per-VP cache of area pairs. It is only ever touched by its
// owning VP's scheduler loop, but a mutex is kept so diagnostic code and
// migration paths may inspect it safely.
type Pool struct {
	mu         sync.Mutex
	stackBytes uint64
	heapBytes  uint64
	limit      int
	pairs      []*AreaPair

	hits, misses uint64
}

// NewPool creates a pool that caches up to limit pairs sized as given.
func NewPool(stackBytes, heapBytes uint64, limit int) *Pool {
	if limit <= 0 {
		limit = 16
	}
	return &Pool{stackBytes: stackBytes, heapBytes: heapBytes, limit: limit}
}

// Get returns a recycled pair when one is cached, or a fresh pair.
func (p *Pool) Get() *AreaPair {
	p.mu.Lock()
	if n := len(p.pairs); n > 0 {
		pair := p.pairs[n-1]
		p.pairs = p.pairs[:n-1]
		p.hits++
		p.mu.Unlock()
		return pair
	}
	p.misses++
	p.mu.Unlock()
	return NewAreaPair(p.stackBytes, p.heapBytes)
}

// Put resets the pair and caches it for immediate reuse; pairs beyond the
// pool limit are dropped for the collector.
func (p *Pool) Put(pair *AreaPair) {
	if pair == nil {
		return
	}
	pair.Reset()
	p.mu.Lock()
	if len(p.pairs) < p.limit {
		p.pairs = append(p.pairs, pair)
	}
	p.mu.Unlock()
}

// Cached returns the number of pairs currently cached.
func (p *Pool) Cached() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pairs)
}

// HitsMisses reports how many Get calls were served from the cache versus by
// fresh allocation; the ratio is the recycling-effectiveness figure used in
// the storage ablation.
func (p *Pool) HitsMisses() (hits, misses uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}
