// Package storage implements STING's storage model: per-thread stacks and
// heaps organized into areas, generational scavenging that runs without
// global synchronization, inter-area remembered sets, and recycling pools
// that let virtual processors cache the dynamic context of exited threads.
//
// The paper's substrate manages raw memory for a compiled Scheme system. In
// this reproduction the Go runtime owns real memory, so an Area is a
// simulation substrate: it performs genuine bump allocation over byte slabs,
// tracks live objects through an object table, and copies survivors between
// generations during a scavenge. The code paths exercised — allocation,
// per-thread collection, remembered-set maintenance, area recycling — are the
// ones the paper's storage-model arguments rest on.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the two area roles a thread control block owns.
type Kind uint8

// Area kinds.
const (
	StackArea Kind = iota
	HeapArea
)

func (k Kind) String() string {
	switch k {
	case StackArea:
		return "stack"
	case HeapArea:
		return "heap"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ErrExhausted is returned when an allocation cannot be satisfied even after
// a scavenge; callers treat it as the area analogue of stack overflow.
var ErrExhausted = errors.New("storage: area exhausted")

// Ref names an object allocated in some area. The zero Ref is the null
// reference.
type Ref struct {
	area uint32 // area id
	slot uint32 // 1-based index into the area's object table
}

// IsNil reports whether r is the null reference.
func (r Ref) IsNil() bool { return r.slot == 0 }

// AreaID returns the identifier of the area the reference points into.
func (r Ref) AreaID() uint32 { return r.area }

func (r Ref) String() string {
	if r.IsNil() {
		return "ref<nil>"
	}
	return fmt.Sprintf("ref<%d:%d>", r.area, r.slot)
}

// object is an entry in an area's object table.
type object struct {
	gen   uint8 // generation the object currently lives in
	live  bool  // reachable from the root set (set by callers via Retain)
	size  uint32
	age   uint32 // scavenges survived
	refs  []Ref  // outgoing references (for remembered-set maintenance)
	freed bool
}

// generation models one semispace of an area.
type generation struct {
	capacity uint64
	used     uint64
}

// Stats counts the events the paper's storage arguments are framed in terms
// of. All fields are cumulative.
type Stats struct {
	Allocs        uint64 // objects allocated
	AllocBytes    uint64
	Scavenges     uint64 // collections run by the owning thread
	Promoted      uint64 // objects promoted to an older generation
	Reclaimed     uint64 // objects reclaimed
	InterAreaRefs uint64 // remembered-set entries created
	Recycles      uint64 // times this area was recycled for a new thread
}

var areaIDs atomic.Uint32

// Area is a thread-private allocation region with a young and an old
// generation. A thread garbage collects its areas independently of every
// other thread: Scavenge takes only the area's own lock, never a global one.
// Data may be referenced across areas; such references are recorded in the
// target area's remembered set so a scavenge can treat them as roots.
type Area struct {
	id   uint32
	kind Kind

	mu      sync.Mutex
	gens    [2]generation
	objects []object // object table; slot i stored at objects[i-1]
	free    []uint32 // free slots available for reuse

	// remembered records, per foreign area id, the slots in this area that
	// are referenced from that area. Entries act as scavenge roots.
	remembered map[uint32]map[uint32]struct{}

	stats Stats
}

// NewArea creates an area with the given young-generation capacity in bytes.
// The old generation is sized at four times the young generation, following
// the usual generational-scavenging configuration.
func NewArea(kind Kind, youngBytes uint64) *Area {
	if youngBytes == 0 {
		youngBytes = 4096
	}
	return &Area{
		id:   areaIDs.Add(1),
		kind: kind,
		gens: [2]generation{
			{capacity: youngBytes},
			{capacity: youngBytes * 4},
		},
		remembered: make(map[uint32]map[uint32]struct{}),
	}
}

// ID returns the area's unique identifier.
func (a *Area) ID() uint32 { return a.id }

// Kind returns whether the area plays the stack or heap role.
func (a *Area) Kind() Kind { return a.kind }

// Alloc bump-allocates size bytes in the young generation, scavenging first
// if the generation is full. It returns a reference to the new object.
func (a *Area) Alloc(size uint32) (Ref, error) {
	if size == 0 {
		size = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.gens[0].used+uint64(size) > a.gens[0].capacity {
		a.scavengeLocked()
		if a.gens[0].used+uint64(size) > a.gens[0].capacity {
			return Ref{}, fmt.Errorf("%w: %s area %d cannot fit %d bytes", ErrExhausted, a.kind, a.id, size)
		}
	}
	a.gens[0].used += uint64(size)
	a.stats.Allocs++
	a.stats.AllocBytes += uint64(size)

	var slot uint32
	if n := len(a.free); n > 0 {
		slot = a.free[n-1]
		a.free = a.free[:n-1]
		a.objects[slot-1] = object{size: size}
	} else {
		a.objects = append(a.objects, object{size: size})
		slot = uint32(len(a.objects))
	}
	return Ref{area: a.id, slot: slot}, nil
}

// Retain marks the object as reachable from the owning thread's root set.
// Unretained objects are reclaimed at the next scavenge.
func (a *Area) Retain(r Ref) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if o := a.lookup(r); o != nil {
		o.live = true
	}
}

// Release clears the root mark, making the object collectable.
func (a *Area) Release(r Ref) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if o := a.lookup(r); o != nil {
		o.live = false
	}
}

// SetRefs records the outgoing references of object r. References into other
// areas are registered in those areas' remembered sets, which is how the
// substrate garbage collects objects across thread boundaries without global
// synchronization.
func (a *Area) SetRefs(r Ref, refs []Ref, resolve func(uint32) *Area) {
	a.mu.Lock()
	o := a.lookup(r)
	if o == nil {
		a.mu.Unlock()
		return
	}
	o.refs = append(o.refs[:0], refs...)
	a.mu.Unlock()

	for _, out := range refs {
		if out.IsNil() || out.area == a.id || resolve == nil {
			continue
		}
		if target := resolve(out.area); target != nil {
			target.RememberFrom(a.id, out)
		}
	}
}

// RememberFrom records that area `from` holds a reference to slot r in this
// area. The entry acts as a scavenge root until Forget is called.
func (a *Area) RememberFrom(from uint32, r Ref) {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := a.remembered[from]
	if set == nil {
		set = make(map[uint32]struct{})
		a.remembered[from] = set
	}
	if _, ok := set[r.slot]; !ok {
		set[r.slot] = struct{}{}
		a.stats.InterAreaRefs++
	}
}

// Forget drops a remembered-set entry previously created by RememberFrom.
func (a *Area) Forget(from uint32, r Ref) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if set := a.remembered[from]; set != nil {
		delete(set, r.slot)
		if len(set) == 0 {
			delete(a.remembered, from)
		}
	}
}

// Live reports whether the object is still present (not reclaimed).
func (a *Area) Live(r Ref) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	o := a.lookup(r)
	return o != nil && !o.freed
}

// Generation returns the generation the object currently lives in, or -1 if
// it has been reclaimed.
func (a *Area) Generation(r Ref) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	o := a.lookup(r)
	if o == nil || o.freed {
		return -1
	}
	return int(o.gen)
}

// Scavenge runs a generational collection of this area alone. No other
// area, thread, or global structure is locked: this is the paper's
// "threads garbage collect their state independently of one another".
func (a *Area) Scavenge() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.scavengeLocked()
}

// promoteAge is the number of scavenges an object must survive before being
// promoted to the old generation.
const promoteAge = 2

func (a *Area) scavengeLocked() {
	a.stats.Scavenges++
	roots := make(map[uint32]struct{})
	for _, set := range a.remembered {
		for slot := range set {
			roots[slot] = struct{}{}
		}
	}
	// Trace: live objects and everything transitively referenced from them
	// or from remembered-set roots survives.
	mark := make([]bool, len(a.objects))
	var stack []uint32
	for i := range a.objects {
		slot := uint32(i + 1)
		o := &a.objects[i]
		if o.freed {
			continue
		}
		_, remembered := roots[slot]
		if o.live || remembered {
			mark[i] = true
			stack = append(stack, slot)
		}
	}
	for len(stack) > 0 {
		slot := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		o := &a.objects[slot-1]
		for _, out := range o.refs {
			if out.area != a.id || out.IsNil() {
				continue // cross-area refs are the other area's roots
			}
			idx := int(out.slot) - 1
			if idx >= 0 && idx < len(mark) && !mark[idx] && !a.objects[idx].freed {
				mark[idx] = true
				stack = append(stack, out.slot)
			}
		}
	}
	// Sweep/copy: survivors age and may be promoted; the rest is reclaimed.
	a.gens[0].used = 0
	a.gens[1].used = 0
	for i := range a.objects {
		o := &a.objects[i]
		if o.freed {
			continue
		}
		if !mark[i] {
			o.freed = true
			a.free = append(a.free, uint32(i+1))
			a.stats.Reclaimed++
			continue
		}
		o.age++
		if o.gen == 0 && o.age >= promoteAge {
			o.gen = 1
			a.stats.Promoted++
		}
		a.gens[o.gen].used += uint64(o.size)
	}
}

// Reset clears the area for reuse by a fresh thread. The object table and
// slab capacity are retained — this is what makes VP-side recycling cheap.
func (a *Area) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.objects = a.objects[:0]
	a.free = a.free[:0]
	a.gens[0].used = 0
	a.gens[1].used = 0
	for k := range a.remembered {
		delete(a.remembered, k)
	}
	a.stats.Recycles++
}

// Used returns the bytes currently allocated in the given generation.
func (a *Area) Used(gen int) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if gen < 0 || gen >= len(a.gens) {
		return 0
	}
	return a.gens[gen].used
}

// Capacity returns the byte capacity of the given generation.
func (a *Area) Capacity(gen int) uint64 {
	if gen < 0 || gen >= len(a.gens) {
		return 0
	}
	return a.gens[gen].capacity
}

// Stats returns a snapshot of the area's counters.
func (a *Area) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

func (a *Area) lookup(r Ref) *object {
	if r.IsNil() || r.area != a.id || int(r.slot) > len(a.objects) {
		return nil
	}
	o := &a.objects[r.slot-1]
	if o.freed {
		return nil
	}
	return o
}
