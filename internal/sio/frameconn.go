package sio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrFrameTooLarge is delivered (and the connection closed) when a peer
// announces a frame beyond the configured maximum.
var ErrFrameTooLarge = errors.New("sio: frame exceeds maximum size")

// FrameCallback receives inbound frames. It runs on the connection's
// reader goroutine and must be brief — decode, hand off to a thread, wake
// a waiter. After the first non-nil err (io.EOF for orderly close) no
// further calls are made.
type FrameCallback func(frame []byte, err error)

// Buffer pooling. The remote fabric's hot path sends and receives one
// frame per tuple operation; allocating each frame fresh made the
// allocator the dominant per-op cost (see the span ablation in
// EXPERIMENTS.md). GetBuf/PutBuf recycle byte slices through a sync.Pool,
// and WriteFramePrefixed/StartPooled let callers encode into (and decode
// out of) recycled storage without a copy. Anything a callback wants to
// keep past the pooled lifetime must be deep-copied — the tuple codec
// already copies strings and slices, so decoded values never alias pool
// storage.

// PrefixLen is the frame header size: callers of WriteFramePrefixed
// reserve this many bytes at the front of the buffer for the length.
const PrefixLen = 4

// maxPooledBuf bounds what PutBuf will recycle; beyond this the slice is
// left for the GC so one giant frame does not pin a giant pool entry.
const maxPooledBuf = 64 << 10

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// hdrPool recycles the *[]byte boxes themselves: PutBuf would otherwise
// allocate a fresh header per recycle (&b escapes), which is exactly the
// per-op allocation the pooling exists to remove.
var hdrPool = sync.Pool{New: func() any { return new([]byte) }}

// GetBuf returns a zero-length buffer with pooled capacity. Append into
// it, then hand it back with PutBuf once nothing aliases it.
func GetBuf() []byte {
	p := bufPool.Get().(*[]byte)
	b := (*p)[:0]
	*p = nil
	hdrPool.Put(p)
	return b
}

// PutBuf recycles a buffer obtained from GetBuf (or grown from one).
// Oversized buffers are dropped. Safe to call with nil.
func PutBuf(b []byte) {
	if b == nil || cap(b) > maxPooledBuf {
		return
	}
	p := hdrPool.Get().(*[]byte)
	*p = b[:0]
	bufPool.Put(p)
}

// FrameConn is the connection-level rendering of this package's callback
// I/O model: it frames a byte stream into length-prefixed messages
// (4-byte big-endian length, then payload), delivers inbound frames via a
// call-back on a background goroutine, and serializes outbound writes.
// Threads never block a VP on the socket: reads happen off-substrate and
// the call-back wakes parked threads, exactly like Device completions.
type FrameConn struct {
	c        net.Conn
	maxFrame uint32
	writeTO  time.Duration

	wmu    sync.Mutex
	closed atomic.Bool

	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
}

// NewFrameConn wraps c. maxFrame bounds accepted payloads (default 1 MiB
// when zero); writeTimeout bounds each WriteFrame so a stalled peer cannot
// wedge a writer for good (default 10s when zero).
func NewFrameConn(c net.Conn, maxFrame uint32, writeTimeout time.Duration) *FrameConn {
	if maxFrame == 0 {
		maxFrame = 1 << 20
	}
	if writeTimeout == 0 {
		writeTimeout = 10 * time.Second
	}
	return &FrameConn{c: c, maxFrame: maxFrame, writeTO: writeTimeout}
}

// Conn returns the underlying connection.
func (fc *FrameConn) Conn() net.Conn { return fc.c }

// BytesIn returns how many bytes have been read, framing included.
func (fc *FrameConn) BytesIn() uint64 { return fc.bytesIn.Load() }

// BytesOut returns how many bytes have been written, framing included.
func (fc *FrameConn) BytesOut() uint64 { return fc.bytesOut.Load() }

// Start launches the reader goroutine: cb receives each inbound frame,
// then exactly one terminal error (io.EOF on orderly close). The frame
// slice is freshly allocated per message and may be retained.
func (fc *FrameConn) Start(cb FrameCallback) {
	go func() {
		var hdr [4]byte
		for {
			if _, err := io.ReadFull(fc.c, hdr[:]); err != nil {
				cb(nil, readErr(err))
				return
			}
			n := binary.BigEndian.Uint32(hdr[:])
			if n > fc.maxFrame {
				cb(nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, fc.maxFrame))
				fc.Close()
				return
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(fc.c, buf); err != nil {
				cb(nil, readErr(err))
				return
			}
			fc.bytesIn.Add(uint64(n) + 4)
			cb(buf, nil)
		}
	}()
}

// StartPooled is Start with recycled frame storage: each inbound frame is
// read into a pooled buffer which is returned to the pool as soon as cb
// returns. The callback must therefore treat the frame as borrowed —
// decode it, deep-copying anything retained — unlike Start, whose frames
// may be kept forever. This removes the per-frame allocation on the
// receive path.
func (fc *FrameConn) StartPooled(cb FrameCallback) {
	go func() {
		var hdr [4]byte
		for {
			if _, err := io.ReadFull(fc.c, hdr[:]); err != nil {
				cb(nil, readErr(err))
				return
			}
			n := binary.BigEndian.Uint32(hdr[:])
			if n > fc.maxFrame {
				cb(nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, fc.maxFrame))
				fc.Close()
				return
			}
			buf := GetBuf()
			if uint32(cap(buf)) < n {
				buf = make([]byte, n)
			} else {
				buf = buf[:n]
			}
			if _, err := io.ReadFull(fc.c, buf); err != nil {
				cb(nil, readErr(err))
				return
			}
			fc.bytesIn.Add(uint64(n) + 4)
			cb(buf, nil)
			PutBuf(buf)
		}
	}()
}

// readErr normalizes a mid-frame EOF: the peer vanished, which callers
// treat like any other broken connection.
func readErr(err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return io.EOF
	}
	return err
}

// WriteFrame writes one length-prefixed frame. Concurrent writers are
// serialized; each write carries the configured deadline.
func (fc *FrameConn) WriteFrame(payload []byte) error {
	if uint32(len(payload)) > fc.maxFrame {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, len(payload), fc.maxFrame)
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	if fc.closed.Load() {
		return net.ErrClosed
	}
	if err := fc.c.SetWriteDeadline(time.Now().Add(fc.writeTO)); err == nil {
		defer fc.c.SetWriteDeadline(time.Time{}) //nolint:errcheck
	}
	n, err := fc.c.Write(buf)
	fc.bytesOut.Add(uint64(n))
	return err
}

// WriteFramePrefixed writes one frame whose length header is filled in
// place: buf must start with PrefixLen reserved bytes followed by the
// payload (the GetBuf + append idiom). Unlike WriteFrame there is no
// header copy — the buffer goes to the socket in a single Write. The
// caller still owns buf afterwards and may PutBuf it.
func (fc *FrameConn) WriteFramePrefixed(buf []byte) error {
	if len(buf) < PrefixLen {
		return fmt.Errorf("%w: %d-byte buffer lacks prefix", ErrFrameTooLarge, len(buf))
	}
	payload := len(buf) - PrefixLen
	if uint32(payload) > fc.maxFrame {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, payload, fc.maxFrame)
	}
	binary.BigEndian.PutUint32(buf, uint32(payload))
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	if fc.closed.Load() {
		return net.ErrClosed
	}
	if err := fc.c.SetWriteDeadline(time.Now().Add(fc.writeTO)); err == nil {
		defer fc.c.SetWriteDeadline(time.Time{}) //nolint:errcheck
	}
	n, err := fc.c.Write(buf)
	fc.bytesOut.Add(uint64(n))
	return err
}

// Close tears the connection down; the reader call-back receives its
// terminal error shortly after.
func (fc *FrameConn) Close() error {
	if fc.closed.Swap(true) {
		return nil
	}
	return fc.c.Close()
}
