package sio

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/testkit"
)

func TestDoEchoes(t *testing.T) {
	vm := testkit.VM(t, 2, 2)
	dev := NewDevice("echo", 100*time.Microsecond)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		comp, err := dev.Do(ctx, Request{Op: "read", Payload: "hello"})
		if err != nil {
			return err
		}
		if comp.Payload != "hello" {
			t.Errorf("payload %v", comp.Payload)
		}
		if comp.Done.Before(comp.Issued) {
			t.Error("time travel")
		}
		return nil
	})
	if dev.Served() != 1 {
		t.Fatalf("served = %d", dev.Served())
	}
}

func TestVPKeepsRunningDuringIO(t *testing.T) {
	// The point of non-blocking I/O: while one thread is kernel-blocked,
	// its VP runs other threads.
	vm := testkit.VM(t, 1, 1)
	dev := NewDevice("slow", 3*time.Millisecond)
	var progressed atomic.Int64
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		bg := ctx.Fork(func(c *core.Context) ([]core.Value, error) {
			for i := 0; i < 1000; i++ {
				progressed.Add(1)
				c.Yield()
			}
			return nil, nil
		}, nil)
		before := progressed.Load()
		if _, err := dev.Do(ctx, Request{Op: "read", Payload: 1}); err != nil {
			return err
		}
		after := progressed.Load()
		if after == before {
			t.Error("no other thread ran during the kernel block")
		}
		core.ThreadTerminate(bg)
		return nil
	})
}

func TestSubmitAsyncCallback(t *testing.T) {
	vm := testkit.VM(t, 2, 2)
	dev := NewDevice("async", 200*time.Microsecond)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		var done atomic.Bool
		var got atomic.Value
		tcb := ctx.TCB()
		err := dev.SubmitAsync(Request{Op: "read", Payload: 7}, func(c Completion) {
			got.Store(c.Payload)
			done.Store(true)
			core.WakeTCB(tcb)
		})
		if err != nil {
			return err
		}
		ctx.BlockUntil(done.Load)
		if got.Load() != 7 {
			t.Errorf("callback payload %v", got.Load())
		}
		return nil
	})
}

func TestDeviceClosed(t *testing.T) {
	vm := testkit.VM(t, 1, 1)
	dev := NewDevice("dead", time.Millisecond)
	dev.Close()
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		if _, err := dev.Do(ctx, Request{Op: "read"}); err != ErrDeviceClosed {
			t.Errorf("err = %v, want ErrDeviceClosed", err)
		}
		return nil
	})
}

func TestFileStore(t *testing.T) {
	vm := testkit.VM(t, 2, 2)
	fs := NewFileStore()
	dev := NewDevice("disk", 100*time.Microsecond, WithProcess(fs.Process))
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		if _, err := dev.Do(ctx, Request{Op: "write", Payload: [2]core.Value{"a", 1}}); err != nil {
			return err
		}
		if _, err := dev.Do(ctx, Request{Op: "write", Payload: [2]core.Value{"b", 2}}); err != nil {
			return err
		}
		comp, err := dev.Do(ctx, Request{Op: "read", Payload: "a"})
		if err != nil {
			return err
		}
		if comp.Payload != 1 {
			t.Errorf("read a = %v", comp.Payload)
		}
		list, err := dev.Do(ctx, Request{Op: "list"})
		if err != nil {
			return err
		}
		keys := list.Payload.([]string)
		if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
			t.Errorf("keys %v", keys)
		}
		// Error paths surface as request errors, not panics.
		if _, err := dev.Do(ctx, Request{Op: "read", Payload: "missing"}); err == nil {
			t.Error("read of missing key succeeded")
		}
		if _, err := dev.Do(ctx, Request{Op: "frobnicate"}); err == nil {
			t.Error("unknown op succeeded")
		}
		return nil
	})
}

func TestManyConcurrentIO(t *testing.T) {
	vm := testkit.VM(t, 4, 4)
	dev := NewDevice("par", 500*time.Microsecond)
	const n = 32
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		kids := make([]*core.Thread, n)
		for i := range kids {
			i := i
			kids[i] = ctx.Fork(func(c *core.Context) ([]core.Value, error) {
				comp, err := dev.Do(c, Request{Op: "read", Payload: i})
				if err != nil {
					return nil, err
				}
				return testkit.One(comp.Payload), nil
			}, vm.VP(i))
		}
		for i, k := range kids {
			v, err := ctx.Value1(k)
			if err != nil {
				return err
			}
			if v != i {
				t.Errorf("req %d got %v", i, v)
			}
		}
		return nil
	})
	if dev.InFlight() != 0 {
		t.Fatalf("in flight = %d after completion", dev.InFlight())
	}
}
