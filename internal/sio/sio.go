// Package sio simulates STING's non-blocking I/O with call-backs. In the
// paper, a thread issuing I/O enters the kernel-block state — its VP keeps
// running other threads — and a completion call-back restores it to a ready
// queue. The operating-system device is replaced here by a Device that
// completes requests asynchronously after a programmable latency, which
// exercises exactly the same thread-level machinery: issue, kernel-block,
// call-back, wake.
package sio

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// ErrDeviceClosed is returned for requests issued after Close.
var ErrDeviceClosed = errors.New("sio: device closed")

// Request is one simulated I/O operation.
type Request struct {
	// Op names the operation (read/write/…); the device echoes it back.
	Op string
	// Payload travels to the device and back.
	Payload core.Value
	// Latency overrides the device default when positive.
	Latency time.Duration
}

// Completion is the result delivered by the device.
type Completion struct {
	Op      string
	Payload core.Value
	Err     error
	// Issued→Done measure the simulated device time.
	Issued, Done time.Time
}

// Callback receives completions for asynchronous submissions. It runs on
// the device goroutine and must be brief (wake a thread, set a flag).
type Callback func(Completion)

// Device is a simulated I/O device: submissions complete on a background
// goroutine after the configured latency. It supports the two access
// styles the substrate offers: SubmitAsync with a call-back, and the
// blocking Do, which parks the calling thread in kernel-block state.
type Device struct {
	name    string
	latency time.Duration

	mu     sync.Mutex
	closed bool

	served   atomic.Uint64
	inFlight atomic.Int64

	// process transforms requests into results; nil echoes the payload.
	process func(Request) (core.Value, error)
}

// DeviceOption configures a Device.
type DeviceOption func(*Device)

// WithProcess installs a request handler (e.g. a simulated file store).
func WithProcess(f func(Request) (core.Value, error)) DeviceOption {
	return func(d *Device) { d.process = f }
}

// NewDevice creates a device whose requests complete after latency.
func NewDevice(name string, latency time.Duration, opts ...DeviceOption) *Device {
	d := &Device{name: name, latency: latency}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Served returns how many requests have completed.
func (d *Device) Served() uint64 { return d.served.Load() }

// InFlight returns the number of outstanding requests.
func (d *Device) InFlight() int64 { return d.inFlight.Load() }

// Close fails subsequent submissions.
func (d *Device) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
}

// SubmitAsync issues a request; cb runs when the device completes it.
func (d *Device) SubmitAsync(req Request, cb Callback) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrDeviceClosed
	}
	d.mu.Unlock()
	lat := req.Latency
	if lat <= 0 {
		lat = d.latency
	}
	issued := time.Now()
	d.inFlight.Add(1)
	time.AfterFunc(lat, func() {
		var val core.Value
		var err error
		if d.process != nil {
			val, err = d.process(req)
		} else {
			val = req.Payload
		}
		d.served.Add(1)
		d.inFlight.Add(-1)
		cb(Completion{Op: req.Op, Payload: val, Err: err, Issued: issued, Done: time.Now()})
	})
	return nil
}

// Do issues a request and parks the calling thread in kernel-block state
// until the completion call-back wakes it; its VP runs other threads in the
// meantime — the non-blocking-I/O guarantee of the program model.
func (d *Device) Do(ctx *core.Context, req Request) (Completion, error) {
	var (
		done atomic.Bool
		comp Completion
	)
	tcb := ctx.TCB()
	err := d.SubmitAsync(req, func(c Completion) {
		comp = c
		done.Store(true)
		core.WakeTCB(tcb)
	})
	if err != nil {
		return Completion{}, err
	}
	ctx.BlockUntil(done.Load)
	return comp, comp.Err
}

// FileStore is a tiny in-memory keyed store exposed as a Device processor,
// giving examples and tests a realistic read/write device.
type FileStore struct {
	mu   sync.Mutex
	data map[string]core.Value
}

// NewFileStore creates an empty store.
func NewFileStore() *FileStore { return &FileStore{data: make(map[string]core.Value)} }

// Process implements the device handler: "write" stores [key value],
// "read" fetches by key, "list" returns the sorted keys.
func (fs *FileStore) Process(req Request) (core.Value, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	switch req.Op {
	case "write":
		kv, ok := req.Payload.([2]core.Value)
		if !ok {
			return nil, errors.New("sio: write payload must be [2]Value{key, value}")
		}
		key, ok := kv[0].(string)
		if !ok {
			return nil, errors.New("sio: write key must be a string")
		}
		fs.data[key] = kv[1]
		return kv[1], nil
	case "read":
		key, ok := req.Payload.(string)
		if !ok {
			return nil, errors.New("sio: read payload must be a string key")
		}
		v, ok := fs.data[key]
		if !ok {
			return nil, errors.New("sio: no such key " + key)
		}
		return v, nil
	case "list":
		keys := make([]string, 0, len(fs.data))
		for k := range fs.data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys, nil
	default:
		return nil, errors.New("sio: unknown op " + req.Op)
	}
}
