package sio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func framePair(t *testing.T, maxFrame uint32) (*FrameConn, *FrameConn) {
	t.Helper()
	a, b := net.Pipe()
	fa := NewFrameConn(a, maxFrame, time.Second)
	fb := NewFrameConn(b, maxFrame, time.Second)
	t.Cleanup(func() { fa.Close(); fb.Close() })
	return fa, fb
}

func TestFrameConnRoundTrip(t *testing.T) {
	fa, fb := framePair(t, 0)
	got := make(chan []byte, 4)
	errs := make(chan error, 1)
	fb.Start(func(frame []byte, err error) {
		if err != nil {
			errs <- err
			return
		}
		got <- frame
	})
	msgs := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{7}, 1000)}
	for _, m := range msgs {
		if err := fa.WriteFrame(m); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for _, want := range msgs {
		select {
		case frame := <-got:
			if !bytes.Equal(frame, want) {
				t.Fatalf("frame = %q, want %q", frame, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for frame")
		}
	}
	fa.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("terminal err = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no terminal error after close")
	}
	wantBytes := uint64(0)
	for _, m := range msgs {
		wantBytes += uint64(len(m)) + 4
	}
	if fb.BytesIn() != wantBytes || fa.BytesOut() != wantBytes {
		t.Fatalf("bytes in/out = %d/%d, want %d", fb.BytesIn(), fa.BytesOut(), wantBytes)
	}
}

func TestFrameConnOversizedFrame(t *testing.T) {
	fa, fb := framePair(t, 64)
	if err := fa.WriteFrame(bytes.Repeat([]byte{1}, 65)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write err = %v, want ErrFrameTooLarge", err)
	}
	// An oversized announcement from the peer kills the read loop.
	errs := make(chan error, 1)
	fb.Start(func(frame []byte, err error) {
		if err != nil {
			errs <- err
		}
	})
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	go fa.Conn().Write(hdr[:]) //nolint:errcheck
	select {
	case err := <-errs:
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("reader err = %v, want ErrFrameTooLarge", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader did not reject oversized frame")
	}
}

func TestFrameConnMidFrameEOF(t *testing.T) {
	fa, fb := framePair(t, 0)
	errs := make(chan error, 1)
	fb.Start(func(frame []byte, err error) {
		if err != nil {
			errs <- err
		}
	})
	// Announce 100 bytes, send 3, hang up: the reader sees EOF, not a
	// partial frame.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	go func() {
		fa.Conn().Write(hdr[:])          //nolint:errcheck
		fa.Conn().Write([]byte{1, 2, 3}) //nolint:errcheck
		fa.Close()                       // mid-frame hangup
	}()
	select {
	case err := <-errs:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("reader err = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader did not notice hangup")
	}
}
