package diag

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/tspace"
)

// The stall sampler. Each pass snapshots every blocked table, ages the
// waiters against the SLO, and runs deadlock detection over a wait-for
// graph built from producer history: a blocked thread T is presumed to
// wait for thread U when U recently deposited into the class T is
// blocked on AND U is itself currently blocked. A producer that is
// still running breaks the edge — which is exactly why a legitimate
// producer/consumer pipeline never registers as a deadlock: somewhere
// in the chain a thread is runnable, or the head waits on a class
// nobody in the group produces.

// StallReport describes one waiter past the SLO.
type StallReport struct {
	Space      string `json:"space"`
	Key        string `json:"key,omitempty"`
	Arity      int    `json:"arity"`
	Wild       bool   `json:"wild,omitempty"`
	AgeMs      int64  `json:"age_ms"`
	Thread     uint64 `json:"thread,omitempty"`
	ThreadName string `json:"thread_name,omitempty"`
	State      string `json:"state,omitempty"`
	Trace      string `json:"trace,omitempty"`
	Span       string `json:"span,omitempty"`
}

// ThreadRef names one participant in a reported deadlock cycle.
type ThreadRef struct {
	ID    uint64 `json:"id"`
	Name  string `json:"name,omitempty"`
	Space string `json:"space"`
	Key   string `json:"key,omitempty"`
}

// ParkReport describes one remote server park.
type ParkReport struct {
	Conn  string `json:"conn"`
	Op    string `json:"op"`
	Space string `json:"space"`
	AgeMs int64  `json:"age_ms"`
}

// Report is the full diagnosis snapshot served at /debug/diag.
type Report struct {
	Node        string                  `json:"node,omitempty"`
	SampledAt   time.Time               `json:"sampled_at"`
	Waiters     int                     `json:"waiters"`
	Stalls      []StallReport           `json:"stalls"`
	Deadlocks   [][]ThreadRef           `json:"deadlocks"`
	RemoteParks []ParkReport            `json:"remote_parks,omitempty"`
	Spaces      map[string]*SpaceReport `json:"spaces,omitempty"`
	Shards      map[string]*ShardReport `json:"shards,omitempty"`
	Recorder    []Event                 `json:"recorder_tail,omitempty"`
}

// Sample runs one sampler pass now and returns the fresh report. The
// loop calls it on every tick; the HTTP handler calls it on demand so
// /debug/diag is never staler than the request.
func (d *Diagnoser) Sample() *Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	t0 := time.Now()

	var waiters []tspace.WaiterInfo
	for _, src := range d.cfg.Waiters {
		waiters = append(waiters, src.WaiterInfos()...)
	}

	rep := &Report{
		Node:      d.cfg.Node,
		SampledAt: t0,
		Waiters:   len(waiters),
		Stalls:    []StallReport{},
		Deadlocks: [][]ThreadRef{},
	}

	d.detectStalls(rep, waiters, t0)
	d.detectDeadlocks(rep, waiters)
	d.detectBursts(t0)

	if d.cfg.Parked != nil {
		for _, p := range d.cfg.Parked() {
			rep.RemoteParks = append(rep.RemoteParks, ParkReport{
				Conn: p.Conn, Op: p.Op, Space: p.Space,
				AgeMs: t0.Sub(p.Since).Milliseconds(),
			})
		}
	}
	rep.Spaces = d.prof.spaceReports()
	rep.Shards = d.prof.shardReports()
	rep.Recorder = d.rec.Tail(32)

	d.samples.Add(1)
	d.sampleLat.ObserveSince(t0)
	d.report.Store(rep)
	return rep
}

// LastReport returns the most recent sample, or nil before the first.
func (d *Diagnoser) LastReport() *Report { return d.report.Load() }

// detectStalls ages waiters against the SLO, tracking onsets across
// samples by (space, registration-seq) identity so each stall counts
// once however long it lasts.
func (d *Diagnoser) detectStalls(rep *Report, waiters []tspace.WaiterInfo, now time.Time) {
	live := make(map[stallID]bool, len(d.stalls))
	for _, w := range waiters {
		age := now.Sub(w.Since)
		if age < d.cfg.StallSLO {
			continue
		}
		id := stallID{space: w.Space, seq: w.Seq}
		live[id] = true
		sr := StallReport{
			Space: w.Space, Key: w.Key, Arity: w.Arity, Wild: w.Wild,
			AgeMs: age.Milliseconds(),
		}
		if w.Thread != nil {
			ti := core.SnapshotThread(w.Thread)
			sr.Thread = ti.ID
			sr.ThreadName = ti.Name
			sr.State = ti.State.String() + "/" + ti.Exec.String()
			sr.Trace = ti.Trace
			sr.Span = ti.Span
		}
		rep.Stalls = append(rep.Stalls, sr)
		if _, seen := d.stalls[id]; !seen {
			d.stalls[id] = now
			d.stallOnsets.Add(1)
			d.rec.Record(Event{T: now, Kind: "stall", Space: w.Space, Key: w.Key,
				Detail: "waiter past SLO; thread " + strconv.FormatUint(sr.Thread, 10),
				Count:  uint64(age.Milliseconds())})
		}
	}
	for id := range d.stalls {
		if !live[id] {
			delete(d.stalls, id)
			d.rec.Record(Event{T: now, Kind: "stall-clear", Space: id.space,
				Detail: "waiter " + strconv.FormatUint(id.seq, 10) + " unparked"})
		}
	}
	sort.Slice(rep.Stalls, func(i, j int) bool { return rep.Stalls[i].AgeMs > rep.Stalls[j].AgeMs })
	d.stalledNow.Store(int64(len(rep.Stalls)))
}

// detectDeadlocks builds the wait-for graph and reports its cycles.
// Deadlocks are deduplicated by cycle signature so a persistent cycle
// counts once, not once per sample.
func (d *Diagnoser) detectDeadlocks(rep *Report, waiters []tspace.WaiterInfo) {
	// One representative waiter per blocked thread. A thread blocks on
	// one template at a time; duplicates (same thread in two tables)
	// cannot happen in the blocking loop.
	blocked := make(map[uint64]tspace.WaiterInfo, len(waiters))
	for _, w := range waiters {
		if w.Thread != nil {
			blocked[w.Thread.ID()] = w
		}
	}
	if len(blocked) < 2 {
		d.clearGoneDeadlocks(nil)
		return
	}
	edges := make(map[uint64][]uint64, len(blocked))
	for tid, w := range blocked {
		for _, p := range d.prof.recentProducers(w.Space, w.Arity, w.Sig, w.Wild) {
			if p != tid {
				if _, isBlocked := blocked[p]; isBlocked {
					edges[tid] = append(edges[tid], p)
				}
			}
		}
	}

	// Iterative DFS with tri-color marking; a back edge closes a cycle.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[uint64]int, len(blocked))
	var stack []uint64
	onStack := make(map[uint64]int) // thread → index in stack
	seen := make(map[string]bool)

	var cycles [][]uint64
	var dfs func(u uint64)
	dfs = func(u uint64) {
		color[u] = grey
		onStack[u] = len(stack)
		stack = append(stack, u)
		for _, v := range edges[u] {
			switch color[v] {
			case white:
				dfs(v)
			case grey:
				cyc := append([]uint64(nil), stack[onStack[v]:]...)
				sig := cycleSig(cyc)
				if !seen[sig] {
					seen[sig] = true
					cycles = append(cycles, cyc)
				}
			}
		}
		stack = stack[:len(stack)-1]
		delete(onStack, u)
		color[u] = black
	}
	roots := make([]uint64, 0, len(blocked))
	for tid := range blocked {
		roots = append(roots, tid)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, tid := range roots {
		if color[tid] == white {
			dfs(tid)
		}
	}

	liveSigs := make(map[string]bool, len(cycles))
	now := time.Now()
	for _, cyc := range cycles {
		refs := make([]ThreadRef, 0, len(cyc))
		for _, tid := range cyc {
			w := blocked[tid]
			name := ""
			if w.Thread != nil {
				name = w.Thread.Name()
			}
			refs = append(refs, ThreadRef{ID: tid, Name: name, Space: w.Space, Key: w.Key})
		}
		rep.Deadlocks = append(rep.Deadlocks, refs)
		sig := cycleSig(cyc)
		liveSigs[sig] = true
		if _, known := d.deadlocks[sig]; !known {
			d.deadlocks[sig] = now
			d.deadlocked.Add(1)
			d.rec.Record(Event{T: now, Kind: "deadlock", Space: refs[0].Space, Key: refs[0].Key,
				Detail: "cycle " + sig, Count: uint64(len(cyc))})
		}
	}
	d.clearGoneDeadlocks(liveSigs)
}

func (d *Diagnoser) clearGoneDeadlocks(live map[string]bool) {
	for sig := range d.deadlocks {
		if !live[sig] {
			delete(d.deadlocks, sig)
		}
	}
}

// cycleSig canonicalizes a cycle as its sorted member IDs, so the same
// cycle found from different entry points compares equal.
func cycleSig(cyc []uint64) string {
	ids := append([]uint64(nil), cyc...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte('>')
		}
		b.WriteString(strconv.FormatUint(id, 10))
	}
	return b.String()
}

// detectBursts compares cumulative conflict and failed-steal counters
// against the previous sample and records burst events past the
// configured thresholds.
func (d *Diagnoser) detectBursts(now time.Time) {
	conf := d.prof.conflicts.Load()
	if delta := conf - d.lastConf; delta >= d.cfg.ConflictBurst {
		d.rec.Record(Event{T: now, Kind: "conflict-burst",
			Detail: "commit conflicts in one sample period", Count: delta})
	}
	d.lastConf = conf

	if d.cfg.VM != nil {
		var failed uint64
		for _, vp := range d.cfg.VM.VPs() {
			failed += vp.Stats().Snapshot().FailedSteals
		}
		if delta := failed - d.lastFail; delta >= d.cfg.StealStorm && d.lastFail != 0 {
			d.rec.Record(Event{T: now, Kind: "steal-storm",
				Detail: "failed steal attempts in one sample period", Count: delta})
		}
		d.lastFail = failed
	}
}
