package diag

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/testkit"
	"repro/internal/tspace"
)

// The two tests the wait-for graph must pass to be trusted: a crafted
// cross-space deadlock is reported within one sampler period, and a
// legitimate (if slow) producer/consumer chain is NOT flagged even
// while every stage is parked.

func TestTwoSpaceDeadlockDetected(t *testing.T) {
	vm := testkit.VM(t, 2, 2)
	reg := tspace.NewRegistry(tspace.KindHash, tspace.Config{})
	d := New(Config{
		SamplePeriod: 20 * time.Millisecond,
		StallSLO:     time.Hour, // isolate deadlock detection from stalls
		Waiters:      []WaiterSource{reg},
	})
	d.Start()
	defer d.Stop()

	spA, _ := reg.Open("A", tspace.KindHash, tspace.Config{})
	spB, _ := reg.Open("B", tspace.KindHash, tspace.Config{})

	// t1 feeds B and drinks twice from A; t2 feeds A and drinks twice
	// from B. Each second drink has no producer left: t1 ends parked on
	// A (fed only by t2, now parked) and t2 on B (fed only by t1) — a
	// true cross-space cycle.
	t1 := vm.Spawn(func(ctx *core.Context) ([]core.Value, error) {
		if err := spB.Put(ctx, tspace.Tuple{"tok", 1}); err != nil {
			return nil, err
		}
		for i := 0; i < 2; i++ {
			if _, _, err := spA.Get(ctx, tspace.Template{"tok", tspace.F("v")}); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}, core.WithName("dl-1"))
	t2 := vm.Spawn(func(ctx *core.Context) ([]core.Value, error) {
		if err := spA.Put(ctx, tspace.Tuple{"tok", 2}); err != nil {
			return nil, err
		}
		for i := 0; i < 2; i++ {
			if _, _, err := spB.Get(ctx, tspace.Template{"tok", tspace.F("v")}); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}, core.WithName("dl-2"))

	// The background sampler (20ms period) must surface the cycle on
	// its own once both threads are parked.
	testkit.Eventually(t, 5*time.Second, func() bool {
		rep := d.LastReport()
		return rep != nil && len(rep.Deadlocks) > 0
	}, "deadlock not reported by sampler")

	rep := d.LastReport()
	if len(rep.Deadlocks) != 1 {
		t.Fatalf("deadlocks = %v, want exactly one cycle", rep.Deadlocks)
	}
	cyc := rep.Deadlocks[0]
	ids := map[uint64]bool{}
	spaces := map[string]bool{}
	for _, ref := range cyc {
		ids[ref.ID] = true
		spaces[ref.Space] = true
		if ref.Key != "tok" {
			t.Errorf("cycle member key %q, want tok", ref.Key)
		}
	}
	if !ids[t1.ID()] || !ids[t2.ID()] {
		t.Fatalf("cycle %v does not name both threads (%d, %d)", cyc, t1.ID(), t2.ID())
	}
	if !spaces["A"] || !spaces["B"] {
		t.Fatalf("cycle %v does not span both spaces", cyc)
	}
	if got := d.deadlocked.Load(); got != 1 {
		t.Fatalf("deadlocks_total = %d, want 1 (dedup across samples)", got)
	}

	// Break the cycle: feed both spaces; the report must clean up.
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		if err := spA.Put(ctx, tspace.Tuple{"tok", 3}); err != nil {
			return err
		}
		return spB.Put(ctx, tspace.Tuple{"tok", 4})
	})
	for _, th := range []*core.Thread{t1, t2} {
		if _, err := core.JoinThread(th); err != nil {
			t.Fatalf("thread %s: %v", th, err)
		}
	}
	testkit.Eventually(t, 5*time.Second, func() bool {
		rep := d.LastReport()
		return rep != nil && len(rep.Deadlocks) == 0
	}, "deadlock report did not clear after tokens arrived")
}

func TestProducerConsumerChainNotFlagged(t *testing.T) {
	const stages = 4
	vm := testkit.VM(t, 2, 2)
	reg := tspace.NewRegistry(tspace.KindHash, tspace.Config{})
	d := New(Config{
		SamplePeriod: 10 * time.Millisecond,
		StallSLO:     20 * time.Millisecond,
		Waiters:      []WaiterSource{reg},
	})
	d.Start()
	defer d.Stop()

	sps := make([]tspace.TupleSpace, stages+1)
	for i := range sps {
		sps[i], _ = reg.Open(fmt.Sprintf("stage-%d", i), tspace.KindHash, tspace.Config{})
	}

	// A pipeline: stage i moves items from space i to space i+1. After
	// the feeder's items drain, every stage parks waiting on upstream —
	// stalled, but NOT deadlocked: the chain has no cycle, and its head
	// waits on a class no parked thread produces.
	const warm = 3
	threads := make([]*core.Thread, stages)
	for i := 0; i < stages; i++ {
		in, out := sps[i], sps[i+1]
		threads[i] = vm.Spawn(func(ctx *core.Context) ([]core.Value, error) {
			for j := 0; j < warm+1; j++ {
				tup, _, err := in.Get(ctx, tspace.Template{"item", tspace.F("v")})
				if err != nil {
					return nil, err
				}
				if err := out.Put(ctx, tup); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}, core.WithName(fmt.Sprintf("stage-%d", i)))
	}
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		for j := 0; j < warm; j++ {
			if err := sps[0].Put(ctx, tspace.Tuple{"item", j}); err != nil {
				return err
			}
		}
		return nil
	})

	// Wait until the pipeline drains and every stage is parked long
	// enough to be a stall, then give the sampler several periods.
	testkit.Eventually(t, 5*time.Second, func() bool {
		rep := d.LastReport()
		return rep != nil && len(rep.Stalls) == stages
	}, "pipeline stages not all reported stalled")
	time.Sleep(100 * time.Millisecond)

	rep := d.LastReport()
	if len(rep.Deadlocks) != 0 {
		t.Fatalf("idle pipeline flagged as deadlock: %v", rep.Deadlocks)
	}
	if len(rep.Stalls) != stages {
		t.Fatalf("stalls = %d, want %d (all stages parked)", len(rep.Stalls), stages)
	}
	// Age-ranked: stalls sorted oldest first.
	for i := 1; i < len(rep.Stalls); i++ {
		if rep.Stalls[i].AgeMs > rep.Stalls[i-1].AgeMs {
			t.Fatalf("stalls not age-ranked: %v", rep.Stalls)
		}
	}

	// One more item flows end to end and finishes every stage.
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		return sps[0].Put(ctx, tspace.Tuple{"item", 99})
	})
	for _, th := range threads {
		if _, err := core.JoinThread(th); err != nil {
			t.Fatalf("thread %s: %v", th, err)
		}
	}
}
