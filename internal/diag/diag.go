// Package diag is the substrate's always-on runtime diagnoser: the
// subsystem an operator reaches for when a STING program hangs, crawls,
// or thrashes — without restarting it under a debugger.
//
// Three cooperating pieces:
//
//   - A low-frequency stall sampler (sampler.go) walks every parked
//     waiter — tuple-space blocked tables, and remote server parks when
//     wired — and the threads that own them, builds a wait-for graph
//     keyed by (space, arity, first-field class), and reports both
//     cycles (true deadlocks) and age-ranked stalls older than a
//     configurable SLO, with span context attached so a stall links
//     into the distributed traces of internal/obs.
//   - A hot-key contention profiler (sketch.go, this file) keeps
//     per-space space-saving top-K sketches over put/get/take keys,
//     wake misses, baton handoffs, and STM conflict keys, with
//     per-shard attribution pushed in by internal/cluster.
//   - A flight recorder (recorder.go) keeps a fixed-size ring of
//     diagnostic events (stall onsets, conflict bursts, steal storms,
//     probe failures, drain flips) that stingd dumps on SIGQUIT, on a
//     watchdog-detected scheduler stall, and on /debug/diag?dump=1.
//
// Everything is dependency-free and pull-based; when no Diagnoser is
// started the only cost to the runtime is one atomic nil check per
// instrumented operation (see tspace.SetDiagHook).
package diag

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tspace"
)

// WaiterSource yields blocked-table snapshots; *tspace.Registry
// implements it, and tests substitute fixtures.
type WaiterSource interface {
	WaiterInfos() []tspace.WaiterInfo
}

// ParkInfo describes one remote request parked server-side on a
// blocking tuple operation (internal/remote's serveBlocking).
type ParkInfo struct {
	Conn  string    // remote address of the owning connection
	Op    string    // wire op name ("GET", "RD", ...)
	Space string    // target space name
	Since time.Time // when the request parked
}

// Config shapes a Diagnoser. Zero values pick the documented defaults.
type Config struct {
	// Node tags reports and flight-recorder dumps (multi-node merges).
	Node string
	// SamplePeriod is the stall-sampler interval (default 1s).
	SamplePeriod time.Duration
	// StallSLO is the parked age past which a waiter is reported as
	// stalled (default 30s).
	StallSLO time.Duration
	// TopK is how many hot keys each per-space sketch reports
	// (default 10); the sketch keeps 4×TopK counters.
	TopK int
	// RecorderCap bounds the flight-recorder ring (default 4096 events).
	RecorderCap int
	// Waiters lists the registries whose blocked tables the sampler
	// walks. Usually one: the process's tuple-space registry.
	Waiters []WaiterSource
	// Parked, when set, contributes remote server parks (stingd wires
	// it to remote.Server.Parked, adapted).
	Parked func() []ParkInfo
	// VM, when set, lets the sampler watch scheduler steal counters for
	// steal storms.
	VM *core.VM
	// ConflictBurst is the per-sample conflict delta that triggers a
	// conflict-burst recorder event (default 64).
	ConflictBurst uint64
	// StealStorm is the per-sample failed-steal delta that triggers a
	// steal-storm recorder event (default 4096).
	StealStorm uint64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.SamplePeriod <= 0 {
		out.SamplePeriod = time.Second
	}
	if out.StallSLO <= 0 {
		out.StallSLO = 30 * time.Second
	}
	if out.TopK <= 0 {
		out.TopK = 10
	}
	if out.RecorderCap <= 0 {
		out.RecorderCap = 4096
	}
	if out.ConflictBurst == 0 {
		out.ConflictBurst = 64
	}
	if out.StealStorm == 0 {
		out.StealStorm = 4096
	}
	return out
}

// Diagnoser owns the profiler, the sampler, and the flight recorder.
type Diagnoser struct {
	cfg  Config
	prof *profiler
	rec  *Recorder

	mu        sync.Mutex // sampler state: one sample at a time
	stalls    map[stallID]time.Time
	deadlocks map[string]time.Time
	lastConf  uint64
	lastFail  uint64
	report    atomic.Pointer[Report]

	samples     atomic.Uint64
	stallOnsets atomic.Uint64
	stalledNow  atomic.Int64
	deadlocked  atomic.Uint64
	watchdog    atomic.Uint64
	sampleLat   *obs.Histogram

	stop chan struct{}
	done chan struct{}
}

// stallID identifies one blocking attempt across samples: the space
// name plus the wait-table registration sequence number.
type stallID struct {
	space string
	seq   uint64
}

// New builds a Diagnoser; Start activates it.
func New(cfg Config) *Diagnoser {
	c := cfg.withDefaults()
	return &Diagnoser{
		cfg:       c,
		prof:      newProfiler(c.TopK),
		rec:       NewRecorder(c.RecorderCap),
		stalls:    make(map[stallID]time.Time),
		deadlocks: make(map[string]time.Time),
		sampleLat: obs.NewHistogram(),
	}
}

// Start installs the tuple-space hook, makes this Diagnoser the
// process default (the target of RecordEvent/ShardEvent), and launches
// the sampler loop. Stop undoes all three.
func (d *Diagnoser) Start() {
	tspace.SetDiagHook(d.prof)
	defaultDiag.Store(d)
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go d.loop()
}

// Stop halts the sampler and removes the hooks. Safe to call once
// after Start.
func (d *Diagnoser) Stop() {
	close(d.stop)
	<-d.done
	tspace.SetDiagHook(nil)
	defaultDiag.CompareAndSwap(d, nil)
}

// Recorder returns the diagnoser's flight recorder.
func (d *Diagnoser) Recorder() *Recorder { return d.rec }

// Record appends a diagnostic event to the flight recorder.
func (d *Diagnoser) Record(kind, space, key, detail string, count uint64) {
	d.rec.Record(Event{T: time.Now(), Kind: kind, Space: space, Key: key, Detail: detail, Count: count})
}

// WatchdogStall notes a watchdog-detected scheduler stall: counter,
// recorder event. The caller (stingd's watchdog) decides whether to
// dump the ring afterwards.
func (d *Diagnoser) WatchdogStall(detail string) {
	d.watchdog.Add(1)
	d.Record("watchdog-stall", "", "", detail, d.watchdog.Load())
}

func (d *Diagnoser) loop() {
	defer close(d.done)
	t := time.NewTicker(d.cfg.SamplePeriod)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.Sample()
		}
	}
}

// defaultDiag is the process-wide Diagnoser that package-level
// reporters (cluster probe failures, shard rollups) feed. Nil until a
// Diagnoser starts; every reporter is then a single atomic load plus a
// nil check.
var defaultDiag atomic.Pointer[Diagnoser]

// Default returns the process-wide Diagnoser, or nil.
func Default() *Diagnoser { return defaultDiag.Load() }

// RecordEvent appends an event to the default Diagnoser's flight
// recorder; a no-op when diagnosis is off.
func RecordEvent(kind, space, key, detail string, count uint64) {
	if d := defaultDiag.Load(); d != nil {
		d.Record(kind, space, key, detail, count)
	}
}

// ShardEvent attributes one routed tuple operation to a shard; the
// cluster client calls it so /debug/diag can answer "which shard is
// hot". A no-op when diagnosis is off.
func ShardEvent(shard, space string, op tspace.DiagOp) {
	if d := defaultDiag.Load(); d != nil {
		d.prof.shardEvent(shard, space, op)
	}
}
