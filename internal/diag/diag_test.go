package diag

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/testkit"
	"repro/internal/tspace"
)

func TestSketchTopKeepsHeavyHitters(t *testing.T) {
	s := newSketch(2) // 8 counters
	hot := classKey{arity: 2, sig: 42, keyed: true}
	for i := 0; i < 1000; i++ {
		s.observe(hot, "hot")
		s.observe(classKey{arity: 2, sig: uint64(1000 + i), keyed: true}, i)
	}
	top := s.top(2)
	if len(top) == 0 {
		t.Fatal("empty top")
	}
	if top[0].Key != "hot" {
		t.Fatalf("top key = %q, want hot (top=%v)", top[0].Key, top)
	}
	if top[0].Count < 1000 {
		t.Fatalf("hot count = %d, want >= 1000", top[0].Count)
	}
	if got := top[0].Count - top[0].Err; got > 1000 {
		t.Fatalf("guaranteed count %d exceeds true count", got)
	}
}

func TestSketchUnkeyedClass(t *testing.T) {
	s := newSketch(2)
	s.observe(classKey{arity: 3, keyed: false}, nil)
	top := s.top(1)
	if len(top) != 1 || top[0].Key != "*" || top[0].Arity != 3 {
		t.Fatalf("top = %v", top)
	}
}

func TestRecorderRingAndDump(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(Event{Kind: "e", Count: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	if evs[0].Count != 2 || evs[3].Count != 5 {
		t.Fatalf("ring contents %v", evs)
	}
	if tail := r.Tail(2); len(tail) != 2 || tail[1].Count != 5 {
		t.Fatalf("tail %v", tail)
	}
	added, dropped := r.Stats()
	if added != 6 || dropped != 2 {
		t.Fatalf("added %d dropped %d", added, dropped)
	}
	var buf bytes.Buffer
	if err := r.DumpJSON(&buf, "n1"); err != nil {
		t.Fatal(err)
	}
	d, err := DecodeDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Node != "n1" || len(d.Events) != 4 || d.Dropped != 2 {
		t.Fatalf("dump %+v", d)
	}
}

// waiterFixture feeds the sampler synthetic waiters.
type waiterFixture struct{ infos []tspace.WaiterInfo }

func (f *waiterFixture) WaiterInfos() []tspace.WaiterInfo { return f.infos }

func TestStallOnsetCountsOnce(t *testing.T) {
	fix := &waiterFixture{infos: []tspace.WaiterInfo{{
		Space: "s", Arity: 2, Sig: 7, Key: "k", Seq: 3,
		Since: time.Now().Add(-time.Minute),
	}}}
	d := New(Config{StallSLO: 10 * time.Millisecond, Waiters: []WaiterSource{fix}})
	rep := d.Sample()
	if len(rep.Stalls) != 1 || rep.Stalls[0].Space != "s" || rep.Stalls[0].Key != "k" {
		t.Fatalf("stalls %v", rep.Stalls)
	}
	if rep.Stalls[0].AgeMs < 59_000 {
		t.Fatalf("age %d too low", rep.Stalls[0].AgeMs)
	}
	d.Sample()
	d.Sample()
	if got := d.stallOnsets.Load(); got != 1 {
		t.Fatalf("onsets = %d, want 1 (same waiter across samples)", got)
	}
	// The waiter unparks: stall clears, a clear event is recorded.
	fix.infos = nil
	rep = d.Sample()
	if len(rep.Stalls) != 0 || d.stalledNow.Load() != 0 {
		t.Fatalf("stalls %v after clear", rep.Stalls)
	}
	kinds := eventKinds(d.rec.Events())
	if !strings.Contains(kinds, "stall-clear") {
		t.Fatalf("no stall-clear event in %s", kinds)
	}
}

func eventKinds(evs []Event) string {
	var parts []string
	for _, e := range evs {
		parts = append(parts, e.Kind)
	}
	return strings.Join(parts, ",")
}

func TestProfilerHotKeyThroughRealSpace(t *testing.T) {
	vm := testkit.VM(t, 2, 2)
	reg := tspace.NewRegistry(tspace.KindHash, tspace.Config{})
	d := New(Config{Waiters: []WaiterSource{reg}, TopK: 3})
	d.Start()
	defer d.Stop()

	sp, err := reg.Open("orders", tspace.KindHash, tspace.Config{})
	if err != nil {
		t.Fatal(err)
	}
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		for i := 0; i < 200; i++ {
			if err := sp.Put(ctx, tspace.Tuple{"hot-key", i}); err != nil {
				return err
			}
		}
		for i := 0; i < 50; i++ {
			if err := sp.Put(ctx, tspace.Tuple{fmt.Sprintf("cold-%d", i), i}); err != nil {
				return err
			}
		}
		for i := 0; i < 200; i++ {
			if _, _, err := sp.Get(ctx, tspace.Template{"hot-key", tspace.F("v")}); err != nil {
				return err
			}
		}
		return nil
	})

	rep := d.Sample()
	sr := rep.Spaces["orders"]
	if sr == nil {
		t.Fatalf("no space report; spaces %v", rep.Spaces)
	}
	if len(sr.Puts) == 0 || sr.Puts[0].Key != "hot-key" {
		t.Fatalf("hot put key not ranked first: %v", sr.Puts)
	}
	if len(sr.Takes) == 0 || sr.Takes[0].Key != "hot-key" {
		t.Fatalf("hot take key not ranked first: %v", sr.Takes)
	}
	if d.prof.puts.Load() != 250 || d.prof.takes.Load() != 200 {
		t.Fatalf("totals puts=%d takes=%d", d.prof.puts.Load(), d.prof.takes.Load())
	}
}

func TestShardEventAndDefault(t *testing.T) {
	d := New(Config{})
	d.Start()
	defer d.Stop()
	if Default() != d {
		t.Fatal("default not installed")
	}
	ShardEvent("10.0.0.1:7000", "orders", tspace.DiagPut)
	ShardEvent("10.0.0.1:7000", "orders", tspace.DiagTake)
	ShardEvent("10.0.0.2:7000", "orders", tspace.DiagConflict)
	RecordEvent("probe-fail", "", "10.0.0.2:7000", "connection refused", 1)

	rep := d.Sample()
	s1 := rep.Shards["10.0.0.1:7000"]
	if s1 == nil || s1.Puts != 1 || s1.Takes != 1 || s1.Spaces["orders"] != 2 {
		t.Fatalf("shard1 %+v", s1)
	}
	if s2 := rep.Shards["10.0.0.2:7000"]; s2 == nil || s2.Conflicts != 1 {
		t.Fatalf("shard2 %+v", s2)
	}
	if !strings.Contains(eventKinds(d.rec.Events()), "probe-fail") {
		t.Fatal("probe-fail event missing")
	}
}

func TestHandlerReportAndDump(t *testing.T) {
	d := New(Config{Node: "n1"})
	h := Handler{D: d}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/diag", nil))
	if rr.Code != 200 {
		t.Fatalf("code %d", rr.Code)
	}
	var rep Report
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Node != "n1" {
		t.Fatalf("node %q", rep.Node)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/diag?dump=1", nil))
	dump, err := DecodeDump(rr.Body)
	if err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	if dump.Node != "n1" || len(dump.Events) == 0 {
		t.Fatalf("dump %+v", dump)
	}

	rr = httptest.NewRecorder()
	Handler{}.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/diag", nil))
	if rr.Code != 503 {
		t.Fatalf("nil diagnoser code %d, want 503", rr.Code)
	}
}

func TestCollectorFamilies(t *testing.T) {
	d := New(Config{})
	d.Sample()
	d.WatchdogStall("test")
	ms := d.Collector().Collect()
	want := map[string]bool{
		"sting_diag_samples_total":          false,
		"sting_diag_stalls_total":           false,
		"sting_diag_stalled_waiters":        false,
		"sting_diag_deadlocks_total":        false,
		"sting_diag_watchdog_stalls_total":  false,
		"sting_diag_key_events_total":       false,
		"sting_diag_wake_misses_total":      false,
		"sting_diag_handoffs_total":         false,
		"sting_diag_recorder_events_total":  false,
		"sting_diag_recorder_dropped_total": false,
		"sting_diag_sample_latency_seconds": false,
	}
	for _, m := range ms {
		want[m.Name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("family %s missing", name)
		}
	}
	for _, m := range ms {
		if m.Name == "sting_diag_watchdog_stalls_total" && m.Value != 1 {
			t.Errorf("watchdog stalls = %v, want 1", m.Value)
		}
		if m.Name == "sting_diag_samples_total" && m.Value != 1 {
			t.Errorf("samples = %v, want 1", m.Value)
		}
	}
}
