package diag

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/tspace"
)

type atomic64 = atomic.Uint64

func nowNanos() int64 { return time.Now().UnixNano() }

// The hot-key profiler. Keys are tuple classes — (arity, first-field
// hash) — exactly the classes the wait table wakes on, so a key that is
// hot here is the key waiters contend for there. Per space it keeps one
// space-saving sketch per operation kind (put/take/conflict), wake-miss
// and handoff counters, and a bounded recent-producer table the
// deadlock detector consults. Per shard it keeps plain counters pushed
// in by the cluster client.

// classKey identifies a tuple class. keyed is false for tuples whose
// first field is unkeyable (threads, aggregates, empty tuples); such
// classes carry sig 0 and only ever feed wildcard waiters.
type classKey struct {
	arity int
	sig   uint64
	keyed bool
}

// sketchNode is one space-saving counter. err bounds the
// overestimation: true count ∈ [count-err, count].
type sketchNode struct {
	key   classKey
	count uint64
	err   uint64
	first core.Value // exemplar first field, rendered lazily at report time
}

// sketch is the space-saving top-K structure: at most cap counters;
// an unseen key evicts the minimum counter and inherits its count as
// error. Single-writer under the owning spaceProfile's mutex.
type sketch struct {
	cap   int
	nodes map[classKey]*sketchNode
}

func newSketch(topK int) *sketch {
	return &sketch{cap: 4 * topK, nodes: make(map[classKey]*sketchNode, 4*topK)}
}

func (s *sketch) observe(k classKey, first core.Value) {
	if n, ok := s.nodes[k]; ok {
		n.count++
		return
	}
	if len(s.nodes) < s.cap {
		s.nodes[k] = &sketchNode{key: k, count: 1, first: first}
		return
	}
	var min *sketchNode
	for _, n := range s.nodes {
		if min == nil || n.count < min.count {
			min = n
		}
	}
	delete(s.nodes, min.key)
	s.nodes[k] = &sketchNode{key: k, count: min.count + 1, err: min.count, first: first}
}

// HotKey is one reported sketch entry.
type HotKey struct {
	Key   string `json:"key"`
	Arity int    `json:"arity"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// top renders the K heaviest counters, exemplar labels included.
func (s *sketch) top(k int) []HotKey {
	nodes := make([]*sketchNode, 0, len(s.nodes))
	for _, n := range s.nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].count != nodes[j].count {
			return nodes[i].count > nodes[j].count
		}
		return nodes[i].key.sig < nodes[j].key.sig
	})
	if len(nodes) > k {
		nodes = nodes[:k]
	}
	out := make([]HotKey, 0, len(nodes))
	for _, n := range nodes {
		hk := HotKey{Arity: n.key.arity, Count: n.count, Err: n.err}
		if n.key.keyed && n.first != nil {
			hk.Key = fmt.Sprintf("%v", n.first)
		} else {
			hk.Key = "*"
		}
		out = append(out, hk)
	}
	return out
}

// producerRing remembers the last few threads that deposited into a
// class — the "who would have fed this waiter" half of the wait-for
// graph. Four slots is enough to survive interleaving: a deadlocked
// pair revisits its classes every iteration, so the guilty producer is
// always among the most recent few.
type producerRing struct {
	ids  [4]uint64
	last int64 // unix nanos of the newest record, for staleness eviction
	n    int
}

func (r *producerRing) add(id uint64, now int64) {
	r.ids[r.n%len(r.ids)] = id
	r.n++
	r.last = now
}

// maxProducerClasses bounds each stripe's recent-producer table. When
// full, classes whose newest deposit is older than producerTTL are
// swept; if every class is fresh the new one is dropped — a bounded
// loss the deadlock detector tolerates (a live deadlock keeps
// re-recording its classes).
const maxProducerClasses = 128

const producerTTL = int64(10e9) // 10s in nanos

// profStripes spreads one space's event stream over independent locks,
// keyed by recording thread. Without striping every producer and
// consumer of a hot key serializes on a single mutex and the "enabled"
// profiler costs tens of percent instead of a few; with it, threads
// mostly hit distinct stripes and only the sampler pays the merge.
const profStripes = 8

// profStripe is one thread-sliced shard of a space's sketches and
// producer history. The sampler merges stripes at report time.
type profStripe struct {
	mu        sync.Mutex
	puts      *sketch
	takes     *sketch
	conflicts *sketch
	producers map[classKey]*producerRing
}

// spaceProfile aggregates one space's events across its stripes.
type spaceProfile struct {
	stripes    [profStripes]profStripe
	wakeMisses atomic64
	handoffs   atomic64
}

// merged sums one sketch family across stripes and renders its top k.
// Counts add exactly (every event lands in exactly one stripe); error
// bounds add conservatively.
func (sp *spaceProfile) merged(sel func(*profStripe) *sketch, k int) []HotKey {
	agg := make(map[classKey]*sketchNode)
	for i := range sp.stripes {
		st := &sp.stripes[i]
		st.mu.Lock()
		for key, n := range sel(st).nodes {
			if a, ok := agg[key]; ok {
				a.count += n.count
				a.err += n.err
				if a.first == nil {
					a.first = n.first
				}
			} else {
				cp := *n
				agg[key] = &cp
			}
		}
		st.mu.Unlock()
	}
	return (&sketch{nodes: agg}).top(k)
}

// shardCounts aggregates routed-operation counts for one shard.
type shardCounts struct {
	mu                 sync.Mutex
	puts, takes, confs uint64
	spaces             map[string]uint64 // per-space routed-op counts
}

// profiler implements tspace.DiagHook. All methods run on tuple-op hot
// paths: lookups are lock-free (sync.Map), updates take only the one
// space's mutex.
type profiler struct {
	topK   int
	spaces sync.Map // string → *spaceProfile
	shards sync.Map // string → *shardCounts

	puts, takes, conflicts atomic64
	wakeMisses, handoffs   atomic64
}

func newProfiler(topK int) *profiler { return &profiler{topK: topK} }

func (p *profiler) space(name string) *spaceProfile {
	if sp, ok := p.spaces.Load(name); ok {
		return sp.(*spaceProfile)
	}
	sp := &spaceProfile{}
	for i := range sp.stripes {
		sp.stripes[i].puts = newSketch(p.topK)
		sp.stripes[i].takes = newSketch(p.topK)
		sp.stripes[i].conflicts = newSketch(p.topK)
		sp.stripes[i].producers = make(map[classKey]*producerRing)
	}
	actual, _ := p.spaces.LoadOrStore(name, sp)
	return actual.(*spaceProfile)
}

// KeyEvent implements tspace.DiagHook.
func (p *profiler) KeyEvent(space string, op tspace.DiagOp, arity int, sig uint64, keyed bool, first core.Value, threadID uint64) {
	k := classKey{arity: arity, sig: sig, keyed: keyed}
	if !keyed {
		k.sig = 0
	}
	sp := p.space(space)
	st := &sp.stripes[threadID%profStripes]
	st.mu.Lock()
	switch op {
	case tspace.DiagPut:
		st.puts.observe(k, first)
		if threadID != 0 {
			st.recordProducer(k, threadID)
		}
	case tspace.DiagTake:
		st.takes.observe(k, first)
	case tspace.DiagConflict:
		st.conflicts.observe(k, first)
	}
	st.mu.Unlock()
	switch op {
	case tspace.DiagPut:
		p.puts.Add(1)
	case tspace.DiagTake:
		p.takes.Add(1)
	case tspace.DiagConflict:
		p.conflicts.Add(1)
	}
}

func (st *profStripe) recordProducer(k classKey, threadID uint64) {
	now := nowNanos()
	r := st.producers[k]
	if r == nil {
		if len(st.producers) >= maxProducerClasses {
			for ck, cr := range st.producers {
				if now-cr.last > producerTTL {
					delete(st.producers, ck)
				}
			}
			if len(st.producers) >= maxProducerClasses {
				return
			}
		}
		r = &producerRing{}
		st.producers[k] = r
	}
	r.add(threadID, now)
}

// WakeMiss implements tspace.DiagHook.
func (p *profiler) WakeMiss(space string) {
	p.space(space).wakeMisses.Add(1)
	p.wakeMisses.Add(1)
}

// Handoff implements tspace.DiagHook.
func (p *profiler) Handoff(space string) {
	p.space(space).handoffs.Add(1)
	p.handoffs.Add(1)
}

func (p *profiler) shardEvent(shard, space string, op tspace.DiagOp) {
	var sc *shardCounts
	if v, ok := p.shards.Load(shard); ok {
		sc = v.(*shardCounts)
	} else {
		v, _ := p.shards.LoadOrStore(shard, &shardCounts{spaces: make(map[string]uint64)})
		sc = v.(*shardCounts)
	}
	sc.mu.Lock()
	switch op {
	case tspace.DiagPut:
		sc.puts++
	case tspace.DiagTake:
		sc.takes++
	case tspace.DiagConflict:
		sc.confs++
	}
	sc.spaces[space]++
	sc.mu.Unlock()
}

// recentProducers returns the distinct threads that recently deposited
// into the waiter's class. A wild waiter matches any class of its
// arity; a keyed waiter matches its exact class.
func (p *profiler) recentProducers(space string, arity int, sig uint64, wild bool) []uint64 {
	v, ok := p.spaces.Load(space)
	if !ok {
		return nil
	}
	sp := v.(*spaceProfile)
	seen := make(map[uint64]bool, 4)
	var out []uint64
	collect := func(r *producerRing) {
		n := r.n
		if n > len(r.ids) {
			n = len(r.ids)
		}
		for i := 0; i < n; i++ {
			id := r.ids[i]
			if id != 0 && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	for i := range sp.stripes {
		st := &sp.stripes[i]
		st.mu.Lock()
		if wild {
			for ck, r := range st.producers {
				if ck.arity == arity {
					collect(r)
				}
			}
		} else if r, ok := st.producers[classKey{arity: arity, sig: sig, keyed: true}]; ok {
			collect(r)
		}
		st.mu.Unlock()
	}
	return out
}

// SpaceReport is one space's profiler view in the diagnosis report.
type SpaceReport struct {
	Puts       []HotKey `json:"puts,omitempty"`
	Takes      []HotKey `json:"takes,omitempty"`
	Conflicts  []HotKey `json:"conflicts,omitempty"`
	WakeMisses uint64   `json:"wake_misses,omitempty"`
	Handoffs   uint64   `json:"handoffs,omitempty"`
}

// ShardReport is one shard's routed-operation rollup.
type ShardReport struct {
	Puts      uint64            `json:"puts,omitempty"`
	Takes     uint64            `json:"takes,omitempty"`
	Conflicts uint64            `json:"conflicts,omitempty"`
	Spaces    map[string]uint64 `json:"spaces,omitempty"`
}

func (p *profiler) spaceReports() map[string]*SpaceReport {
	out := make(map[string]*SpaceReport)
	p.spaces.Range(func(k, v any) bool {
		sp := v.(*spaceProfile)
		r := &SpaceReport{
			Puts:       sp.merged(func(st *profStripe) *sketch { return st.puts }, p.topK),
			Takes:      sp.merged(func(st *profStripe) *sketch { return st.takes }, p.topK),
			Conflicts:  sp.merged(func(st *profStripe) *sketch { return st.conflicts }, p.topK),
			WakeMisses: sp.wakeMisses.Load(),
			Handoffs:   sp.handoffs.Load(),
		}
		name := k.(string)
		if name == "" {
			name = "(anonymous)"
		}
		out[name] = r
		return true
	})
	return out
}

func (p *profiler) shardReports() map[string]*ShardReport {
	out := make(map[string]*ShardReport)
	p.shards.Range(func(k, v any) bool {
		sc := v.(*shardCounts)
		sc.mu.Lock()
		r := &ShardReport{Puts: sc.puts, Takes: sc.takes, Conflicts: sc.confs,
			Spaces: make(map[string]uint64, len(sc.spaces))}
		for s, n := range sc.spaces {
			r.Spaces[s] = n
		}
		sc.mu.Unlock()
		out[k.(string)] = r
		return true
	})
	return out
}
