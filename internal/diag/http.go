package diag

import (
	"encoding/json"
	"net/http"
)

// Handler serves the diagnosis report at /debug/diag. A plain GET runs
// a fresh sampler pass and returns the full Report as JSON; ?dump=1
// returns a flight-recorder dump instead (the same document SIGQUIT
// writes to stderr, mergeable across nodes by scripts/tracecat -diag).
type Handler struct {
	D *Diagnoser
}

// ServeHTTP implements http.Handler.
func (h Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.D == nil {
		http.Error(w, "diagnosis disabled", http.StatusServiceUnavailable)
		return
	}
	if r.URL.Query().Get("dump") == "1" {
		h.D.Record("dump", "", "", "flight recorder dumped via /debug/diag", 0)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = h.D.rec.DumpJSON(w, h.D.cfg.Node)
		return
	}
	rep := h.D.Sample()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(rep)
}
