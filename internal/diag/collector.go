package diag

import "repro/internal/obs"

// Collector returns the diagnoser's obs metric source — the
// sting_diag_* families stingd registers under "diag".
func (d *Diagnoser) Collector() obs.Collector {
	return obs.CollectorFunc(func() []obs.Metric {
		added, dropped := d.rec.Stats()
		return []obs.Metric{
			obs.Counter("sting_diag_samples_total",
				"Stall-sampler passes completed.",
				float64(d.samples.Load())),
			obs.Counter("sting_diag_stalls_total",
				"Waiter stall onsets (parked past the SLO).",
				float64(d.stallOnsets.Load())),
			obs.Gauge("sting_diag_stalled_waiters",
				"Waiters currently parked past the SLO.",
				float64(d.stalledNow.Load())),
			obs.Counter("sting_diag_deadlocks_total",
				"Distinct wait-for cycles detected.",
				float64(d.deadlocked.Load())),
			obs.Counter("sting_diag_watchdog_stalls_total",
				"Scheduler stalls detected by the stingd watchdog.",
				float64(d.watchdog.Load())),
			obs.Counter("sting_diag_key_events_total",
				"Key events observed by the hot-key profiler.",
				float64(d.prof.puts.Load()), obs.L("op", "put")),
			obs.Counter("sting_diag_key_events_total",
				"Key events observed by the hot-key profiler.",
				float64(d.prof.takes.Load()), obs.L("op", "take")),
			obs.Counter("sting_diag_key_events_total",
				"Key events observed by the hot-key profiler.",
				float64(d.prof.conflicts.Load()), obs.L("op", "conflict")),
			obs.Counter("sting_diag_wake_misses_total",
				"Wait-table wake misses seen by the profiler.",
				float64(d.prof.wakeMisses.Load())),
			obs.Counter("sting_diag_handoffs_total",
				"Baton handoffs seen by the profiler.",
				float64(d.prof.handoffs.Load())),
			obs.Counter("sting_diag_recorder_events_total",
				"Events recorded by the flight recorder.",
				float64(added)),
			obs.Counter("sting_diag_recorder_dropped_total",
				"Flight-recorder events overwritten by ring wrap.",
				float64(dropped)),
			obs.HistogramSample("sting_diag_sample_latency_seconds",
				"Latency of one stall-sampler pass.",
				d.sampleLat),
		}
	})
}
