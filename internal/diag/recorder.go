package diag

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// The flight recorder: a fixed-size ring of diagnostic events kept at
// all times, so the moments leading up to a hang or a crash are
// available after the fact — dumped by stingd on SIGQUIT, on a
// watchdog-detected scheduler stall, and on /debug/diag?dump=1. The
// dump format is line-oriented JSON that scripts/tracecat can merge
// across nodes by timestamp.

// Event is one flight-recorder entry.
type Event struct {
	T      time.Time `json:"t"`
	Kind   string    `json:"kind"`
	Space  string    `json:"space,omitempty"`
	Key    string    `json:"key,omitempty"`
	Detail string    `json:"detail,omitempty"`
	Count  uint64    `json:"count,omitempty"`
}

// Recorder is the ring. Record never blocks beyond its own mutex and
// never allocates once the ring is warm; old events are overwritten.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	added   uint64
	dropped uint64
}

// NewRecorder builds a ring holding at most cap events.
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = 4096
	}
	return &Recorder{buf: make([]Event, cap)}
}

// Record appends ev, overwriting the oldest entry when full.
func (r *Recorder) Record(ev Event) {
	if ev.T.IsZero() {
		ev.T = time.Now()
	}
	r.mu.Lock()
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	r.added++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Stats reports how many events were recorded and how many the ring
// has overwritten.
func (r *Recorder) Stats() (added, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.added, r.dropped
}

// Events returns the ring's contents, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Tail returns the newest n events, oldest first.
func (r *Recorder) Tail(n int) []Event {
	evs := r.Events()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Dump is the on-disk/wire shape of a flight-recorder dump.
type Dump struct {
	Node     string    `json:"node,omitempty"`
	DumpedAt time.Time `json:"dumped_at"`
	Dropped  uint64    `json:"dropped,omitempty"`
	Events   []Event   `json:"events"`
}

// DumpJSON writes the ring as one JSON document tagged with the node
// name. The recorder keeps recording while the dump is written.
func (r *Recorder) DumpJSON(w io.Writer, node string) error {
	_, dropped := r.Stats()
	d := Dump{Node: node, DumpedAt: time.Now(), Dropped: dropped, Events: r.Events()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// DecodeDump parses a dump produced by DumpJSON.
func DecodeDump(rd io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(rd).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}
