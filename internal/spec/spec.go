// Package spec implements STING's speculative-parallelism and barrier
// constructs (§4.3 of the paper): wait-for-one (OR-parallelism),
// wait-for-all (AND-parallelism / barrier synchronization), and task sets
// with programmable priorities and abort. All of it reduces to the thread
// controller's block-on-group / wakeup-waiters machinery plus
// thread-terminate — the paper's three ingredients for speculation:
// programmable priorities, waiting on completions, and terminating losers.
package spec

import (
	"errors"

	"repro/internal/core"
)

// ErrNoWinner is returned by WaitForOne when every speculative thread was
// already determined by termination (no result to report).
var ErrNoWinner = errors.New("spec: no speculative thread produced a value")

// WaitForOne evaluates as a speculative OR: it blocks until at least one of
// the threads completes, returns that thread, and terminates the rest (the
// expression (wait-for-one a1 ... an)). Callers that want losers to keep
// running use WaitForOneKeep.
func WaitForOne(ctx *core.Context, threads []*core.Thread) (*core.Thread, error) {
	winner, err := WaitForOneKeep(ctx, threads)
	for _, t := range threads {
		if t != winner {
			core.ThreadTerminate(t)
		}
	}
	return winner, err
}

// WaitForOneKeep blocks until one thread completes and returns it without
// terminating the others.
func WaitForOneKeep(ctx *core.Context, threads []*core.Thread) (*core.Thread, error) {
	if len(threads) == 0 {
		return nil, ErrNoWinner
	}
	ctx.BlockOnGroup(1, threads)
	// Find a determined thread, preferring one that was not terminated.
	var any *core.Thread
	for _, t := range threads {
		if t.Determined() {
			if any == nil {
				any = t
			}
			if !t.Terminated() {
				return t, nil
			}
		}
	}
	if any == nil {
		return nil, ErrNoWinner
	}
	return any, nil
}

// WaitForAll acts as a barrier synchronization point: the caller blocks
// until every thread completes (the expression (wait-for-all a1 ... an)).
// Unlike wait-for-one no termination pass is needed, since all threads are
// guaranteed complete on resumption.
func WaitForAll(ctx *core.Context, threads []*core.Thread) {
	ctx.BlockOnGroup(len(threads), threads)
}

// WaitForN blocks until n of the threads have completed (the generalized
// block-on-group entry the paper defines both operators from).
func WaitForN(ctx *core.Context, n int, threads []*core.Thread) {
	if n > len(threads) {
		n = len(threads)
	}
	ctx.BlockOnGroup(n, threads)
}

// TaskSet organizes speculative tasks: spawn alternatives with priorities,
// wait for the first useful answer, abort the rest. Speculative tasks are
// created unstealable by default — the paper's §4.1.1 caveat: stealing a
// speculative sibling can import its divergence into the demander.
type TaskSet struct {
	ctx     *core.Context
	group   *core.Group
	threads []*core.Thread
}

// NewTaskSet creates a task set backed by a fresh thread group.
func NewTaskSet(ctx *core.Context, name string) *TaskSet {
	parent := ctx.Thread().Group()
	return &TaskSet{ctx: ctx, group: core.NewGroup(name, parent)}
}

// Speculate spawns a speculative task with the given priority. Higher
// priority tasks run first under the Priority policy manager — "promising
// tasks can execute before unlikely ones because priorities are
// programmable".
func (s *TaskSet) Speculate(priority int, thunk core.Thunk) *core.Thread {
	t := s.ctx.Fork(thunk, nil,
		core.WithGroup(s.group),
		core.WithPriority(priority),
		core.WithStealable(false))
	s.threads = append(s.threads, t)
	return t
}

// Threads returns the tasks spawned so far.
func (s *TaskSet) Threads() []*core.Thread { return s.threads }

// Group returns the backing thread group.
func (s *TaskSet) Group() *core.Group { return s.group }

// First blocks until one task completes, terminates the rest (and any
// threads they created, via the group), and returns the winner's value.
func (s *TaskSet) First() ([]core.Value, error) {
	winner, err := WaitForOneKeep(s.ctx, s.threads)
	if err != nil {
		return nil, err
	}
	vals, verr := winner.TryValue()
	s.Abort(winner)
	return vals, verr
}

// All blocks until every task completes and returns their values in spawn
// order.
func (s *TaskSet) All() ([][]core.Value, error) {
	WaitForAll(s.ctx, s.threads)
	out := make([][]core.Value, len(s.threads))
	var firstErr error
	for i, t := range s.threads {
		vals, err := t.TryValue()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		out[i] = vals
	}
	return out, firstErr
}

// Abort terminates every task in the set except keep (which may be nil to
// abort everything), including the whole subtree each task spawned.
func (s *TaskSet) Abort(keep *core.Thread) {
	for _, t := range s.group.AllThreads() {
		if t != keep {
			core.ThreadTerminate(t)
		}
	}
}
