package spec

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/testkit"
)

func yieldN(ctx *core.Context, n int) ([]core.Value, error) {
	for i := 0; i < n; i++ {
		ctx.Yield()
	}
	return testkit.One(n), nil
}

func TestWaitForOneReturnsFirstAndKillsRest(t *testing.T) {
	vm := testkit.VM(t, 2, 2)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		fast := ctx.Fork(func(c *core.Context) ([]core.Value, error) {
			return testkit.One("fast"), nil
		}, nil, core.WithStealable(false))
		slow := ctx.Fork(func(c *core.Context) ([]core.Value, error) {
			for i := 0; i < 100000; i++ {
				c.Yield()
			}
			return testkit.One("slow"), nil
		}, vm.VP(1), core.WithStealable(false))
		winner, err := WaitForOne(ctx, []*core.Thread{fast, slow})
		if err != nil {
			return err
		}
		vals, err := winner.TryValue()
		if err != nil {
			return err
		}
		if vals[0] != "fast" {
			t.Errorf("winner = %v", vals[0])
		}
		// The loser must end up terminated (it can never finish 100000
		// yields before the terminate request lands).
		ctx.Wait(slow)
		if !slow.Terminated() {
			t.Error("loser not terminated")
		}
		return nil
	})
}

func TestWaitForOneDivergentLoser(t *testing.T) {
	// OR-parallelism over a divergent computation: wait-for-one must still
	// return the converging branch (this is why speculative tasks are
	// created unstealable).
	vm := testkit.VM(t, 2, 2)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		diverge := ctx.Fork(func(c *core.Context) ([]core.Value, error) {
			for {
				c.Yield() // diverges, but politely (TC entries)
			}
		}, vm.VP(1), core.WithStealable(false))
		converge := ctx.Fork(func(c *core.Context) ([]core.Value, error) {
			return testkit.One(1), nil
		}, nil, core.WithStealable(false))
		winner, err := WaitForOne(ctx, []*core.Thread{diverge, converge})
		if err != nil {
			return err
		}
		if winner != converge {
			t.Error("divergent thread won?")
		}
		ctx.Wait(diverge) // must terminate, not hang
		return nil
	})
}

func TestWaitForAllBarrier(t *testing.T) {
	vm := testkit.VM(t, 4, 4)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		threads := make([]*core.Thread, 8)
		for i := range threads {
			n := (i + 1) * 3
			threads[i] = ctx.Fork(func(c *core.Context) ([]core.Value, error) {
				return yieldN(c, n)
			}, vm.VP(i), core.WithStealable(false))
		}
		WaitForAll(ctx, threads)
		for i, th := range threads {
			if !th.Determined() {
				t.Errorf("thread %d not determined after wait-for-all", i)
			}
		}
		return nil
	})
}

func TestWaitForN(t *testing.T) {
	vm := testkit.VM(t, 2, 2)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		quick := make([]*core.Thread, 3)
		for i := range quick {
			quick[i] = ctx.Fork(func(c *core.Context) ([]core.Value, error) {
				return testkit.One(1), nil
			}, nil, core.WithStealable(false))
		}
		slow := ctx.Fork(func(c *core.Context) ([]core.Value, error) {
			for i := 0; i < 1_000_000; i++ {
				c.Yield()
			}
			return nil, nil
		}, vm.VP(1), core.WithStealable(false))
		all := append(append([]*core.Thread{}, quick...), slow)
		WaitForN(ctx, 3, all)
		done := 0
		for _, th := range all {
			if th.Determined() {
				done++
			}
		}
		if done < 3 {
			t.Errorf("only %d determined after wait-for-3", done)
		}
		core.ThreadTerminate(slow)
		return nil
	})
}

func TestTaskSetFirst(t *testing.T) {
	vm := testkit.VM(t, 2, 2)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		set := NewTaskSet(ctx, "search")
		set.Speculate(1, func(c *core.Context) ([]core.Value, error) {
			for i := 0; i < 100000; i++ {
				c.Yield()
			}
			return testkit.One("deep"), nil
		})
		set.Speculate(5, func(c *core.Context) ([]core.Value, error) {
			return testkit.One("shallow"), nil
		})
		vals, err := set.First()
		if err != nil {
			return err
		}
		if vals[0] != "shallow" {
			t.Errorf("first = %v", vals[0])
		}
		// Losers are aborted via the group.
		for _, th := range set.Threads() {
			ctx.Wait(th)
		}
		return nil
	})
}

func TestTaskSetAll(t *testing.T) {
	vm := testkit.VM(t, 4, 4)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		set := NewTaskSet(ctx, "gather")
		for i := 0; i < 5; i++ {
			i := i
			set.Speculate(i, func(c *core.Context) ([]core.Value, error) {
				return testkit.One(i * 10), nil
			})
		}
		vals, err := set.All()
		if err != nil {
			return err
		}
		for i, v := range vals {
			if v[0] != i*10 {
				t.Errorf("task %d value %v", i, v)
			}
		}
		return nil
	})
}

func TestTaskSetAbortKillsGroupChildren(t *testing.T) {
	vm := testkit.VM(t, 2, 2)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		set := NewTaskSet(ctx, "nested")
		var grandchild atomic.Pointer[core.Thread]
		parent := set.Speculate(1, func(c *core.Context) ([]core.Value, error) {
			grandchild.Store(c.Fork(func(cc *core.Context) ([]core.Value, error) {
				for {
					cc.Yield()
				}
			}, nil, core.WithStealable(false)))
			for {
				c.Yield()
			}
		})
		// Let the parent start and spawn its child.
		for grandchild.Load() == nil {
			ctx.Yield()
		}
		set.Abort(nil)
		ctx.Wait(parent)
		gc := grandchild.Load()
		ctx.Wait(gc)
		if !parent.Terminated() || !gc.Terminated() {
			t.Error("group abort did not reach all members")
		}
		return nil
	})
}

func TestWaitForOneEmpty(t *testing.T) {
	vm := testkit.VM(t, 1, 1)
	testkit.RunIn(t, vm, func(ctx *core.Context) error {
		if _, err := WaitForOne(ctx, nil); err != ErrNoWinner {
			t.Errorf("err = %v, want ErrNoWinner", err)
		}
		return nil
	})
}
