package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGatherSortedAndReplaceable(t *testing.T) {
	r := NewRegistry()
	r.Register("b", CollectorFunc(func() []Metric {
		return []Metric{Counter("zz_total", "z", 1), Counter("aa_total", "a", 2)}
	}))
	r.Register("a", CollectorFunc(func() []Metric {
		return []Metric{Gauge("mm", "m", 3, L("vp", "1")), Gauge("mm", "m", 4, L("vp", "0"))}
	}))
	got := r.Gather()
	if len(got) != 4 {
		t.Fatalf("gathered %d metrics, want 4", len(got))
	}
	wantOrder := []string{"aa_total", "mm", "mm", "zz_total"}
	for i, m := range got {
		if m.Name != wantOrder[i] {
			t.Fatalf("position %d: got %s, want %s", i, m.Name, wantOrder[i])
		}
	}
	if got[1].Labels[0].Value != "0" || got[2].Labels[0].Value != "1" {
		t.Fatalf("same-family samples not sorted by labels: %+v", got[1:3])
	}
	// Replacing a source replaces its metrics.
	r.Register("b", CollectorFunc(func() []Metric { return nil }))
	if n := len(r.Gather()); n != 2 {
		t.Fatalf("after replace: %d metrics, want 2", n)
	}
	r.Unregister("a")
	if n := len(r.Gather()); n != 0 {
		t.Fatalf("after unregister: %d metrics, want 0", n)
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // 0.5..7.5
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d, want 100", s.Count)
	}
	wantSum := 0.0
	for i := 0; i < 100; i++ {
		wantSum += float64(i%8) + 0.5
	}
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum %v, want %v", s.Sum, wantSum)
	}
	// Bucket counts: ≤1 gets 0.5 (13 of them: i%8==0 occurs 13 times for 0..99? 0,8,..96 → 13)
	if s.Counts[0] == 0 || s.Counts[len(s.Counts)-1] != 0 {
		t.Fatalf("unexpected bucket layout: %v", s.Counts)
	}
	p50 := s.Quantile(0.5)
	if p50 < 1 || p50 > 8 {
		t.Fatalf("p50 %v outside plausible range", p50)
	}
	if q := s.Quantile(0.99); q < p50 {
		t.Fatalf("p99 %v below p50 %v", q, p50)
	}
	// Values beyond the last bound land in +Inf and clamp to the top bound.
	h2 := NewHistogram(1, 2)
	h2.Observe(50)
	if q := h2.Snapshot().Quantile(0.5); q != 2 {
		t.Fatalf("+Inf quantile %v, want clamp to 2", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile %v, want 0", q)
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many
// goroutines; under -race this is the torn-write check, and afterwards
// the counts and sum must be exact (every Observe is an atomic add and a
// CAS loop — nothing may be lost).
func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram() // latency buckets
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(seed+1) * 1e-5)
			}
		}(w)
	}
	// Snapshot concurrently with the writers: must stay internally
	// consistent (Count equals the bucket sum by construction).
	for i := 0; i < 100; i++ {
		s := h.Snapshot()
		var total uint64
		for _, c := range s.Counts {
			total += c
		}
		if total != s.Count {
			t.Fatalf("torn snapshot: bucket sum %d != count %d", total, s.Count)
		}
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("lost observations: %d, want %d", s.Count, workers*per)
	}
	wantSum := 0.0
	for w := 0; w < workers; w++ {
		wantSum += float64(w+1) * 1e-5 * per
	}
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum %v, want %v", s.Sum, wantSum)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	h := NewHistogram(0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	metrics := []Metric{
		Counter("sting_ops_total", "Ops served.", 42, L("op", "get")),
		Counter("sting_ops_total", "Ops served.", 7, L("op", `we"ird\n`)),
		Gauge("sting_depth", "Depth.", 3),
		HistogramSample("sting_lat_seconds", "Latency.", h),
	}
	var b strings.Builder
	if err := WritePrometheus(&b, metrics); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sting_ops_total counter",
		`sting_ops_total{op="get"} 42`,
		`sting_ops_total{op="we\"ird\\n"} 7`,
		"# TYPE sting_depth gauge",
		"sting_depth 3",
		"# TYPE sting_lat_seconds histogram",
		`sting_lat_seconds_bucket{le="0.1"} 1`,
		`sting_lat_seconds_bucket{le="1"} 2`,
		`sting_lat_seconds_bucket{le="+Inf"} 3`,
		"sting_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE once per family even with several samples.
	if strings.Count(out, "# TYPE sting_ops_total") != 1 {
		t.Fatalf("TYPE emitted more than once:\n%s", out)
	}
	// Histogram with zero observations still yields a complete family.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, []Metric{HistogramSample("empty_seconds", "", nil)}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), `empty_seconds_bucket{le="+Inf"} 0`) {
		t.Fatalf("empty histogram misrendered:\n%s", b2.String())
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Register("x", CollectorFunc(func() []Metric {
		return []Metric{Counter("sting_x_total", "", 1)}
	}))
	healthy := true
	h := &Handler{
		Registry: r,
		Healthy: func() error {
			if !healthy {
				return errDraining
			}
			return nil
		},
		TraceEvents: func() []TraceEvent {
			return []TraceEvent{
				{TimeNanos: 10, Kind: "create", Thread: 1, VP: -1},
				{TimeNanos: 20, Kind: "schedule", Thread: 1, VP: 0},
				{TimeNanos: 30, Kind: "dispatch", Thread: 1, VP: 0},
				{TimeNanos: 40, Kind: "determine", Thread: 1, VP: 0},
			}
		},
	}
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/metrics"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "sting_x_total 1") {
		t.Fatalf("/metrics: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get("/healthz"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("/healthz: %d %q", rec.Code, rec.Body.String())
	}
	healthy = false
	if rec := get("/healthz"); rec.Code != 503 {
		t.Fatalf("/healthz while draining: %d, want 503", rec.Code)
	}
	if rec := get("/debug/trace"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "traceEvents") {
		t.Fatalf("/debug/trace: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get("/nope"); rec.Code != 404 {
		t.Fatalf("/nope: %d, want 404", rec.Code)
	}
	// Trace disabled → 404.
	h2 := &Handler{Registry: r}
	rec := httptest.NewRecorder()
	h2.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 404 {
		t.Fatalf("trace without source: %d, want 404", rec.Code)
	}
}

func TestHandlerLimitValidation(t *testing.T) {
	h := &Handler{
		TraceEvents: func() []TraceEvent {
			return []TraceEvent{{TimeNanos: 10, Kind: "create", Thread: 1, VP: -1}}
		},
		Spans: func() []*SpanData { return nil },
	}
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	// A present limit must be a positive integer; anything else is a
	// 400, never a silent serve-everything default.
	for _, bad := range []string{"0", "-1", "abc", "1.5", ""} {
		if rec := get("/debug/spans?limit=" + bad); rec.Code != 400 {
			t.Errorf("/debug/spans?limit=%s: %d, want 400", bad, rec.Code)
		}
		if rec := get("/debug/trace?limit=" + bad); rec.Code != 400 {
			t.Errorf("/debug/trace?limit=%s: %d, want 400", bad, rec.Code)
		}
	}
	// Absent limit and valid limits still serve.
	for _, path := range []string{"/debug/spans", "/debug/spans?limit=5", "/debug/trace?limit=1"} {
		if rec := get(path); rec.Code != 200 {
			t.Errorf("%s: %d, want 200", path, rec.Code)
		}
	}
}

var errDraining = errDrainingT{}

type errDrainingT struct{}

func (errDrainingT) Error() string { return "draining" }
