package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default bound set for latency histograms: roughly
// logarithmic from 1µs to 10s, in seconds. It covers everything from an
// in-process dispatch to a cross-host blocking Get waiting out a deadline.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket, lock-free histogram: Observe is a binary
// search plus three atomic adds, safe from any number of goroutines (and
// from substrate threads — no parking, no locks, usable in the dispatch
// path). Bounds are upper limits (Prometheus `le` semantics) with an
// implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64   // float64 bits, CAS-accumulated
}

// NewHistogram creates a histogram over the given ascending upper bounds;
// with none, LatencyBuckets applies.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Snapshot copies the histogram into a plain-value form. The total count
// is computed from the bucket counts read, so the snapshot is always
// internally consistent (`_count` equals the +Inf cumulative bucket) even
// while observations race.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// HistogramSnapshot is a plain-value copy of a Histogram. Counts are
// per-bucket (not cumulative); Counts[len(Bounds)] is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing it, the standard fixed-bucket estimator.
// It returns 0 for an empty histogram; values in the +Inf bucket clamp to
// the largest finite bound.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			upper := s.Bounds[i]
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			// Position of the rank within this bucket.
			below := float64(cum - c)
			frac := (rank - below) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lower + (upper-lower)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}
