package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// decodedTrace mirrors the Chrome trace_event container so the export can
// be verified as valid, loadable JSON (what Perfetto's legacy importer
// parses).
type decodedTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeTraceDecodes(t *testing.T) {
	// One thread's full lifecycle on vp 0 plus a steal on vp 1.
	events := []TraceEvent{
		{TimeNanos: 1_000, Kind: "create", Thread: 7, VP: -1},
		{TimeNanos: 2_000, Kind: "schedule", Thread: 7, VP: 0},
		{TimeNanos: 5_000, Kind: "dispatch", Thread: 7, VP: 0},
		{TimeNanos: 9_000, Kind: "block", Thread: 7, VP: 0},
		{TimeNanos: 12_000, Kind: "wake", Thread: 7, VP: 0},
		{TimeNanos: 13_000, Kind: "dispatch", Thread: 7, VP: 0},
		{TimeNanos: 20_000, Kind: "determine", Thread: 7, VP: 0},
		{TimeNanos: 6_000, Kind: "steal", Thread: 9, VP: 1},
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, events); err != nil {
		t.Fatal(err)
	}
	var tr decodedTrace
	if err := json.Unmarshal([]byte(b.String()), &tr); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	var phases []string
	durByName := map[string]float64{}
	sawSteal := false
	sawVPName := false
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "X":
			phases = append(phases, e.Name)
			durByName[e.Name] += e.Dur
			if e.Dur < 0 {
				t.Fatalf("negative duration on %q: %v", e.Name, e.Dur)
			}
			if e.TID != 1 { // vp 0 → tid 1
				t.Fatalf("phase %q on tid %d, want vp-0 track (1)", e.Name, e.TID)
			}
		case "i":
			if e.Name == "steal" {
				sawSteal = true
				if e.TID != 2 {
					t.Fatalf("steal on tid %d, want vp-1 track (2)", e.TID)
				}
			}
		case "M":
			if e.Name == "thread_name" && e.Args["name"] == "vp 0" {
				sawVPName = true
			}
		}
	}
	for _, want := range []string{"pending", "queued", "running", "blocked"} {
		found := false
		for _, p := range phases {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("lifecycle phase %q missing; got %v", want, phases)
		}
	}
	// create(1µs)→schedule(2µs) pending = 1µs; two running slices
	// 5→9 and 13→20 = 11µs total.
	if durByName["pending"] != 1 {
		t.Fatalf("pending duration %v µs, want 1", durByName["pending"])
	}
	if durByName["running"] != 11 {
		t.Fatalf("running duration %v µs, want 11", durByName["running"])
	}
	if !sawSteal {
		t.Fatal("steal instant event missing")
	}
	if !sawVPName {
		t.Fatal("vp 0 thread_name metadata missing")
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", tr.DisplayTimeUnit)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeTrace(&b, nil); err != nil {
		t.Fatal(err)
	}
	var tr decodedTrace
	if err := json.Unmarshal([]byte(b.String()), &tr); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
}
