package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// collect installs a slice sink for the test and returns the accumulator.
func collect(t *testing.T) *[]*SpanData {
	t.Helper()
	var mu sync.Mutex
	var got []*SpanData
	SetSpanSink(func(s *SpanData) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	t.Cleanup(func() { SetSpanSink(nil) })
	return &got
}

func TestSpanLifecycle(t *testing.T) {
	got := collect(t)
	base := OpenSpans()

	root := StartSpan(SpanContext{}, "root", SpanInternal)
	if root == nil {
		t.Fatal("StartSpan returned nil with a sink installed")
	}
	if !root.Context().Valid() {
		t.Fatal("root context invalid")
	}
	root.SetAttr("k", "v")
	child := StartSpan(root.Context(), "child", SpanClient)
	child.Event("hop")
	child.End()
	child.End() // idempotent: must not record twice
	root.End()

	if OpenSpans() != base {
		t.Fatalf("OpenSpans = %d, want %d", OpenSpans(), base)
	}
	if len(*got) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(*got))
	}
	c, r := (*got)[0], (*got)[1]
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("order/name wrong: %q then %q", c.Name, r.Name)
	}
	if c.Trace != r.Trace {
		t.Fatalf("trace split: %v vs %v", c.Trace, r.Trace)
	}
	if c.Parent != r.Span {
		t.Fatalf("child.Parent = %v, want root %v", c.Parent, r.Span)
	}
	if r.Parent != 0 {
		t.Fatalf("root.Parent = %v, want 0", r.Parent)
	}
	if c.Kind != SpanClient || r.Kind != SpanInternal {
		t.Fatalf("kinds = %v/%v", c.Kind, r.Kind)
	}
	if len(r.Attrs) != 1 || r.Attrs[0] != (Attr{"k", "v"}) {
		t.Fatalf("root attrs = %v", r.Attrs)
	}
	if len(c.Events) != 1 || c.Events[0].Name != "hop" {
		t.Fatalf("child events = %v", c.Events)
	}
	if c.DurationNanos < 0 {
		t.Fatalf("negative duration %d", c.DurationNanos)
	}
}

func TestStartSpanDisabledPaths(t *testing.T) {
	// No sink: nil span, and every method is nil-safe.
	SetSpanSink(nil)
	s := StartSpan(SpanContext{}, "x", SpanInternal)
	if s != nil {
		t.Fatal("StartSpan != nil without a sink")
	}
	s.SetAttr("a", "b")
	s.Event("e")
	s.End()
	if s.Context().Valid() {
		t.Fatal("nil span context valid")
	}

	// DisableSpans wins over an installed sink (the ablation switch).
	got := collect(t)
	DisableSpans.Store(true)
	defer DisableSpans.Store(false)
	if s := StartSpan(SpanContext{}, "x", SpanInternal); s != nil {
		t.Fatal("StartSpan != nil with DisableSpans set")
	}
	if len(*got) != 0 {
		t.Fatalf("disabled spans recorded: %d", len(*got))
	}
}

func TestSpanBufferAccounting(t *testing.T) {
	buf := NewSpanBuffer(4)
	for i := 0; i < 10; i++ {
		buf.Record(&SpanData{Name: "s"})
	}
	if got := buf.Recorded(); got != 10 {
		t.Fatalf("Recorded = %d, want 10", got)
	}
	if got := buf.Retained(); got != 4 {
		t.Fatalf("Retained = %d, want 4", got)
	}
	drained := buf.Drain()
	if len(drained) != 4 {
		t.Fatalf("Drain returned %d, want 4", len(drained))
	}
	// The conservation law a collector scrape depends on.
	if buf.Recorded() != buf.Drained()+buf.Retained()+buf.Dropped() {
		t.Fatalf("recorded %d != drained %d + retained %d + dropped %d",
			buf.Recorded(), buf.Drained(), buf.Retained(), buf.Dropped())
	}
	if buf.Retained() != 0 {
		t.Fatalf("Retained after Drain = %d", buf.Retained())
	}
}

func TestSpanBufferConcurrentRecord(t *testing.T) {
	buf := NewSpanBuffer(64)
	var wg sync.WaitGroup
	const writers, each = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				buf.Record(&SpanData{Name: "c"})
			}
		}()
	}
	wg.Wait()
	if got := buf.Recorded(); got != writers*each {
		t.Fatalf("Recorded = %d, want %d", got, writers*each)
	}
	drained := buf.Drain()
	if buf.Recorded() != buf.Drained()+buf.Retained()+buf.Dropped() {
		t.Fatalf("conservation violated: %d != %d+%d+%d",
			buf.Recorded(), buf.Drained(), buf.Retained(), buf.Dropped())
	}
	if len(drained) > 64 {
		t.Fatalf("drained %d from a 64-slot ring", len(drained))
	}
}

func TestSpansJSONRoundTrip(t *testing.T) {
	in := []*SpanData{
		{Trace: TraceID{1, 2}, Span: 3, Parent: 0, Name: "root", Kind: SpanInternal,
			StartNanos: 100, DurationNanos: 50, Attrs: []Attr{{"k", "v"}},
			Events: []SpanEvent{{TimeNanos: 120, Name: "e"}}},
		{Trace: TraceID{1, 2}, Span: 4, Parent: 3, Name: "rpc", Kind: SpanServer,
			StartNanos: 110, DurationNanos: 20},
	}
	var w bytes.Buffer
	if err := WriteSpansJSON(&w, "n1", in); err != nil {
		t.Fatalf("WriteSpansJSON: %v", err)
	}
	node, out, err := DecodeSpansJSON(strings.NewReader(w.String()))
	if err != nil {
		t.Fatalf("DecodeSpansJSON: %v", err)
	}
	if node != "n1" || len(out) != 2 {
		t.Fatalf("decoded node %q with %d spans", node, len(out))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Trace != b.Trace || a.Span != b.Span || a.Parent != b.Parent ||
			a.Name != b.Name || a.Kind != b.Kind ||
			a.StartNanos != b.StartNanos || a.DurationNanos != b.DurationNanos {
			t.Fatalf("span %d mismatch:\n in %+v\nout %+v", i, a, b)
		}
	}
	if len(out[0].Attrs) != 1 || out[0].Attrs[0] != (Attr{"k", "v"}) {
		t.Fatalf("attrs lost: %v", out[0].Attrs)
	}
	if len(out[0].Events) != 1 || out[0].Events[0].Name != "e" {
		t.Fatalf("events lost: %v", out[0].Events)
	}
}

func TestWriteChromeSpansFlowArrows(t *testing.T) {
	spans := []NodeSpans{
		{Node: "cli", Spans: []*SpanData{
			{Trace: TraceID{9, 9}, Span: 1, Name: "client/get", Kind: SpanClient,
				StartNanos: 1000, DurationNanos: 500},
		}},
		{Node: "srv", Spans: []*SpanData{
			{Trace: TraceID{9, 9}, Span: 2, Parent: 1, Name: "server/get", Kind: SpanServer,
				StartNanos: 1100, DurationNanos: 200},
		}},
	}
	var w bytes.Buffer
	if err := WriteChromeSpans(&w, spans); err != nil {
		t.Fatalf("WriteChromeSpans: %v", err)
	}
	out := w.String()
	// One flow-start on the client span, one flow-finish binding to the
	// same id on the server span: the Perfetto arrow.
	if !strings.Contains(out, `"ph":"s"`) || !strings.Contains(out, `"ph":"f"`) {
		t.Fatalf("flow events missing:\n%s", out)
	}
	if !strings.Contains(out, `"client/get"`) || !strings.Contains(out, `"server/get"`) {
		t.Fatalf("span slices missing:\n%s", out)
	}
}
