package tsdb

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// An SLO objective is one declarative assertion over the time-series
// store, written in a one-line-per-objective syntax:
//
//	<name>: <metric>[{k=v,…}] <agg> <op> <threshold> [of <metric>] over <window> [budget <pct>]
//
//	get-latency:  remote.get p99 < 2ms over 60s
//	abort-ratio:  sting_stm_aborts_total rate < 5% of sting_stm_commits_total over 60s
//	steal-rate:   sting_vp_steals_total rate < 10000/s over 30s
//	runq-depth:   sting_vp_runq_depth value < 128 over 10s budget 99.9%
//
// agg is one of p50/p90/p95/p99 (histogram quantile over the trailing
// window), max/mean (ditto), rate (counter per-second rate, reset-safe),
// or value (gauge, newest sample). `of` turns a rate into a ratio of two
// rates — the only place a % threshold makes sense. `remote.<op>`,
// `client.<op>`, and `stm.commit` are aliases for the corresponding
// latency histogram families. Lines starting with # and blank lines are
// skipped; objectives may also be ;-separated on one line.

// SLOState is an objective's evaluated condition.
type SLOState int

// States, ordered by severity (the rollup takes the max).
const (
	StateNoData SLOState = iota - 1 // not enough samples in the window yet
	StateOK
	StateWarn
	StateBreach
)

func (s SLOState) String() string {
	switch s {
	case StateNoData:
		return "nodata"
	case StateOK:
		return "ok"
	case StateWarn:
		return "warn"
	case StateBreach:
		return "breach"
	default:
		return fmt.Sprintf("SLOState(%d)", int(s))
	}
}

// ParseSLOState is the inverse of SLOState.String; unknown strings parse
// as nodata so a newer node's state never panics an older stingtop.
func ParseSLOState(s string) SLOState {
	switch s {
	case "ok":
		return StateOK
	case "warn":
		return StateWarn
	case "breach":
		return StateBreach
	default:
		return StateNoData
	}
}

// WarnRatio is how close to the threshold a value must get (as a fraction
// of the threshold, in the breaching direction) before the state turns
// warn: 0.8 means warn at 80% of the way there.
const WarnRatio = 0.8

// budgetRing caps how many evaluation outcomes feed the error-budget
// accounting: at a 1s sample interval this is ~8.5 minutes of history.
const budgetRing = 512

// selector names one series: a metric family plus exact labels.
type selector struct {
	Name   string
	Labels []obs.Label
}

func (s selector) String() string { return seriesKey(s.Name, s.Labels) }

// Objective is one parsed SLO rule.
type Objective struct {
	Name      string
	Expr      string // the raw rule text, echoed in /debug/slo
	Metric    selector
	Agg       string // p50 p90 p95 p99 max mean rate value
	Op        string // < <= > >=
	Threshold float64
	Denom     *selector // rate ratio denominator (nil: plain)
	Window    time.Duration
	// Budget is the target compliance fraction (0.99 = 99%): the error
	// budget is 1-Budget of evaluations allowed to breach.
	Budget float64
}

// Status is one objective's evaluated state, the /debug/slo row.
type Status struct {
	Name          string    `json:"name"`
	Expr          string    `json:"expr"`
	State         string    `json:"state"`
	Value         float64   `json:"value"`
	Threshold     float64   `json:"threshold"`
	WindowSeconds float64   `json:"window_s"`
	EvalsTotal    uint64    `json:"evals_total"`
	BreachesTotal uint64    `json:"breaches_total"`
	BudgetTarget  float64   `json:"budget_target"`
	BudgetBurn    float64   `json:"budget_burn"`
	LastEval      time.Time `json:"last_eval"`
}

// aliases expand the short metric names the syntax examples use.
func expandAlias(name string) selector {
	if op, ok := strings.CutPrefix(name, "remote."); ok {
		return selector{Name: "sting_remote_op_latency_seconds", Labels: []obs.Label{obs.L("op", op)}}
	}
	if op, ok := strings.CutPrefix(name, "client."); ok {
		return selector{Name: "sting_remote_client_op_latency_seconds", Labels: []obs.Label{obs.L("op", op)}}
	}
	if name == "stm.commit" {
		return selector{Name: "sting_stm_commit_latency_seconds"}
	}
	return selector{Name: name}
}

// parseSelector reads `metric` or `metric{k=v,k2="v2"}`.
func parseSelector(tok string) (selector, error) {
	brace := strings.IndexByte(tok, '{')
	if brace < 0 {
		return expandAlias(tok), nil
	}
	if !strings.HasSuffix(tok, "}") {
		return selector{}, fmt.Errorf("unterminated label set in %q", tok)
	}
	sel := expandAlias(tok[:brace])
	body := tok[brace+1 : len(tok)-1]
	for _, pair := range strings.Split(body, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return selector{}, fmt.Errorf("bad label %q in %q (want k=v)", pair, tok)
		}
		v = strings.Trim(strings.TrimSpace(v), `"`)
		sel.Labels = append(sel.Labels, obs.L(strings.TrimSpace(k), v))
	}
	return sel, nil
}

// parseThreshold accepts a duration (2ms → seconds), a percentage
// (5% → 0.05), a rate (100/s → 100), or a bare float.
func parseThreshold(tok string) (float64, error) {
	if v, ok := strings.CutSuffix(tok, "%"); ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("bad percentage %q", tok)
		}
		return f / 100, nil
	}
	if v, ok := strings.CutSuffix(tok, "/s"); ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("bad rate %q", tok)
		}
		return f, nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return f, nil
	}
	if d, err := time.ParseDuration(tok); err == nil {
		return d.Seconds(), nil
	}
	return 0, fmt.Errorf("bad threshold %q (want a number, duration, percentage, or N/s)", tok)
}

var validAggs = map[string]bool{
	"p50": true, "p90": true, "p95": true, "p99": true,
	"max": true, "mean": true, "rate": true, "value": true,
}

// ParseObjective parses one `name: expr` rule.
func ParseObjective(line string) (*Objective, error) {
	name, expr, ok := strings.Cut(line, ":")
	if !ok {
		return nil, fmt.Errorf("slo: rule %q needs a name (want \"name: metric agg op threshold over window\")", line)
	}
	name = strings.TrimSpace(name)
	expr = strings.TrimSpace(expr)
	if name == "" || expr == "" {
		return nil, fmt.Errorf("slo: rule %q has an empty name or body", line)
	}
	o := &Objective{Name: name, Expr: expr, Window: 60 * time.Second, Budget: 0.99}
	fields := strings.Fields(expr)
	if len(fields) < 4 {
		return nil, fmt.Errorf("slo %s: want \"metric agg op threshold [of metric] over window [budget pct]\", got %q", name, expr)
	}
	sel, err := parseSelector(fields[0])
	if err != nil {
		return nil, fmt.Errorf("slo %s: %v", name, err)
	}
	o.Metric = sel
	o.Agg = fields[1]
	if !validAggs[o.Agg] {
		return nil, fmt.Errorf("slo %s: unknown aggregation %q (want p50/p90/p95/p99/max/mean/rate/value)", name, o.Agg)
	}
	o.Op = fields[2]
	switch o.Op {
	case "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("slo %s: unknown comparison %q (want < <= > >=)", name, o.Op)
	}
	o.Threshold, err = parseThreshold(fields[3])
	if err != nil {
		return nil, fmt.Errorf("slo %s: %v", name, err)
	}
	rest := fields[4:]
	for len(rest) > 0 {
		switch rest[0] {
		case "of":
			if len(rest) < 2 {
				return nil, fmt.Errorf("slo %s: dangling \"of\"", name)
			}
			if o.Agg != "rate" {
				return nil, fmt.Errorf("slo %s: \"of\" (rate ratio) requires the rate aggregation, not %q", name, o.Agg)
			}
			d, err := parseSelector(rest[1])
			if err != nil {
				return nil, fmt.Errorf("slo %s: %v", name, err)
			}
			o.Denom = &d
			rest = rest[2:]
		case "over":
			if len(rest) < 2 {
				return nil, fmt.Errorf("slo %s: dangling \"over\"", name)
			}
			w, err := time.ParseDuration(rest[1])
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("slo %s: bad window %q", name, rest[1])
			}
			o.Window = w
			rest = rest[2:]
		case "budget":
			if len(rest) < 2 {
				return nil, fmt.Errorf("slo %s: dangling \"budget\"", name)
			}
			pct, err := parseThreshold(rest[1])
			if err != nil || pct <= 0 || pct >= 1 {
				return nil, fmt.Errorf("slo %s: bad budget %q (want a compliance percentage like 99.9%%)", name, rest[1])
			}
			o.Budget = pct
			rest = rest[2:]
		default:
			return nil, fmt.Errorf("slo %s: unexpected token %q", name, rest[0])
		}
	}
	if o.Denom == nil && o.Agg == "rate" && strings.HasSuffix(fields[3], "%") {
		return nil, fmt.Errorf("slo %s: a %% threshold on a rate needs \"of <metric>\" to name the denominator", name)
	}
	return o, nil
}

// ParseObjectives parses a whole rule document: one rule per line (or
// ;-separated), # comments and blank lines skipped.
func ParseObjectives(src string) ([]*Objective, error) {
	var out []*Objective
	seen := make(map[string]bool)
	for _, line := range strings.FieldsFunc(src, func(r rune) bool { return r == '\n' || r == ';' }) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		o, err := ParseObjective(line)
		if err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
		out = append(out, o)
	}
	return out, nil
}

// sloTrack is one objective's mutable evaluation state.
type sloTrack struct {
	obj      *Objective
	evals    uint64
	breaches uint64
	ring     [budgetRing]bool // true = breached
	ringN    int
	ringHead int
	last     Status
}

// SLOEngine evaluates objectives against a Store — hook it to a Sampler
// via OnSample so every sample tick re-evaluates. All methods are safe
// for concurrent use.
type SLOEngine struct {
	mu     sync.Mutex
	tracks []*sloTrack
}

// NewSLOEngine builds an engine over the parsed objectives.
func NewSLOEngine(objectives []*Objective) *SLOEngine {
	e := &SLOEngine{}
	for _, o := range objectives {
		t := &sloTrack{obj: o}
		t.last = Status{
			Name: o.Name, Expr: o.Expr, State: StateNoData.String(),
			Threshold: o.Threshold, WindowSeconds: o.Window.Seconds(), BudgetTarget: o.Budget,
		}
		e.tracks = append(e.tracks, t)
	}
	return e
}

// measure computes an objective's current value from the store.
func measure(o *Objective, st *Store) (float64, bool) {
	switch o.Agg {
	case "rate":
		num, ok := st.Rate(o.Metric.Name, o.Metric.Labels, o.Window)
		if !ok {
			return 0, false
		}
		if o.Denom == nil {
			return num, true
		}
		den, ok := st.Rate(o.Denom.Name, o.Denom.Labels, o.Window)
		if !ok {
			return 0, false
		}
		if den <= 0 {
			if num <= 0 {
				return 0, true
			}
			return 1e12, true // all numerator, no denominator: maximally bad
		}
		return num / den, true
	case "value":
		last, _, _, _, ok := st.GaugeStats(o.Metric.Name, o.Metric.Labels, o.Window)
		return last, ok
	default: // histogram aggregations
		snap, ok := st.WindowHistogram(o.Metric.Name, o.Metric.Labels, o.Window)
		if !ok || snap.Count == 0 {
			return 0, false
		}
		switch o.Agg {
		case "p50":
			return snap.Quantile(0.50), true
		case "p90":
			return snap.Quantile(0.90), true
		case "p95":
			return snap.Quantile(0.95), true
		case "p99":
			return snap.Quantile(0.99), true
		case "max":
			return snap.Quantile(1), true
		case "mean":
			return snap.Sum / float64(snap.Count), true
		}
	}
	return 0, false
}

// classify turns a measured value into a state: breach when the
// comparison fails, warn when the value is past WarnRatio of the way to
// the threshold, ok otherwise.
func classify(o *Objective, v float64) SLOState {
	holds := false
	switch o.Op {
	case "<":
		holds = v < o.Threshold
	case "<=":
		holds = v <= o.Threshold
	case ">":
		holds = v > o.Threshold
	case ">=":
		holds = v >= o.Threshold
	}
	if !holds {
		return StateBreach
	}
	switch o.Op {
	case "<", "<=":
		if o.Threshold > 0 && v >= o.Threshold*WarnRatio {
			return StateWarn
		}
	case ">", ">=":
		if o.Threshold > 0 && v <= o.Threshold/WarnRatio {
			return StateWarn
		}
	}
	return StateOK
}

// Evaluate re-measures every objective at now and returns the statuses.
// nodata ticks do not consume error budget.
func (e *SLOEngine) Evaluate(now time.Time, st *Store) []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.tracks))
	for _, t := range e.tracks {
		o := t.obj
		v, ok := measure(o, st)
		state := StateNoData
		if ok {
			state = classify(o, v)
			t.evals++
			breached := state == StateBreach
			if breached {
				t.breaches++
			}
			if t.ringN < budgetRing {
				t.ring[(t.ringHead+t.ringN)%budgetRing] = breached
				t.ringN++
			} else {
				t.ring[t.ringHead] = breached
				t.ringHead = (t.ringHead + 1) % budgetRing
			}
		}
		burn := 0.0
		if t.ringN > 0 {
			bad := 0
			for i := 0; i < t.ringN; i++ {
				if t.ring[(t.ringHead+i)%budgetRing] {
					bad++
				}
			}
			frac := float64(bad) / float64(t.ringN)
			allowed := 1 - o.Budget
			if allowed <= 0 {
				allowed = 1e-9
			}
			burn = frac / allowed
		}
		t.last = Status{
			Name: o.Name, Expr: o.Expr, State: state.String(), Value: v,
			Threshold: o.Threshold, WindowSeconds: o.Window.Seconds(),
			EvalsTotal: t.evals, BreachesTotal: t.breaches,
			BudgetTarget: o.Budget, BudgetBurn: burn, LastEval: now,
		}
		out = append(out, t.last)
	}
	return out
}

// Statuses returns the most recent evaluation without re-measuring.
func (e *SLOEngine) Statuses() []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.tracks))
	for _, t := range e.tracks {
		out = append(out, t.last)
	}
	return out
}

// Breaching returns the names of objectives currently in breach — the
// readiness gate's input.
func (e *SLOEngine) Breaching() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, t := range e.tracks {
		if t.last.State == StateBreach.String() {
			out = append(out, t.obj.Name)
		}
	}
	return out
}

// Collector exposes the evaluated states as metrics, so SLO breaches are
// themselves scrapeable (and mergeable by stingtop):
//
//	sting_slo_state{slo}             -1 nodata, 0 ok, 1 warn, 2 breach
//	sting_slo_value{slo}             the measured value
//	sting_slo_threshold{slo}         the objective's threshold
//	sting_slo_evals_total{slo}       evaluations with data
//	sting_slo_breaches_total{slo}    evaluations that breached
//	sting_slo_error_budget_burn{slo} breach fraction ÷ allowed fraction
func (e *SLOEngine) Collector() obs.Collector {
	return obs.CollectorFunc(func() []obs.Metric {
		statuses := e.Statuses()
		out := make([]obs.Metric, 0, len(statuses)*6)
		for _, s := range statuses {
			l := obs.L("slo", s.Name)
			out = append(out,
				obs.Gauge("sting_slo_state", "SLO state: -1 nodata, 0 ok, 1 warn, 2 breach.", float64(ParseSLOState(s.State)), l),
				obs.Gauge("sting_slo_value", "Current measured SLO value.", s.Value, l),
				obs.Gauge("sting_slo_threshold", "SLO threshold.", s.Threshold, l),
				obs.Counter("sting_slo_evals_total", "SLO evaluations with data.", float64(s.EvalsTotal), l),
				obs.Counter("sting_slo_breaches_total", "SLO evaluations in breach.", float64(s.BreachesTotal), l),
				obs.Gauge("sting_slo_error_budget_burn", "Error-budget burn: breach fraction over allowed fraction.", s.BudgetBurn, l),
			)
		}
		return out
	})
}
