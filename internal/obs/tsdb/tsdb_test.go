package tsdb

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/obs"
)

func t0() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }

func counterAt(v float64) []obs.Metric {
	return []obs.Metric{obs.Counter("c_total", "", v)}
}

func TestRingWraparoundNeverDoubleCounts(t *testing.T) {
	st := NewStore(4)
	base := t0()
	// Feed 10 samples through a 4-slot ring: a strictly increasing counter,
	// +1 per second. After wraparound the live window is the last 4 samples.
	for i := 0; i < 10; i++ {
		st.Ingest(base.Add(time.Duration(i)*time.Second), counterAt(float64(i)))
	}
	s := st.lookup("c_total", nil)
	if s == nil {
		t.Fatal("series not retained")
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want ring capacity 4", s.Len())
	}
	// Oldest live sample must be i=6 (values 6,7,8,9): nothing overwritten
	// survives, nothing live is duplicated.
	for i := 0; i < 4; i++ {
		if got, want := s.at(i).V, float64(6+i); got != want {
			t.Fatalf("at(%d).V = %g, want %g", i, got, want)
		}
	}
	// A wide window sees exactly the 3 deltas among 4 live samples: rate 1/s.
	rate, ok := st.Rate("c_total", nil, time.Hour)
	if !ok || rate != 1 {
		t.Fatalf("Rate = %g, %v; want 1, true", rate, ok)
	}
}

func TestRateWindowedAndResetSafe(t *testing.T) {
	st := NewStore(16)
	base := t0()
	// 0..5 increments of 10/s, then a counter reset (process restart), then
	// 100/s. The reset delta is negative and must be dropped, not summed.
	vals := []float64{0, 10, 20, 30, 40, 50, 3, 103, 203}
	for i, v := range vals {
		st.Ingest(base.Add(time.Duration(i)*time.Second), counterAt(v))
	}
	rate, ok := st.Rate("c_total", nil, time.Hour)
	if !ok {
		t.Fatal("Rate not ok")
	}
	// Positive deltas: 10*5 + 100*2 = 250 over 8 seconds.
	if want := 250.0 / 8; rate != want {
		t.Fatalf("reset-safe rate = %g, want %g", rate, want)
	}
	// A 2s trailing window sees only the last two deltas (100 each over 2s).
	rate, ok = st.Rate("c_total", nil, 2*time.Second)
	if !ok || rate != 100 {
		t.Fatalf("windowed rate = %g, %v; want 100, true", rate, ok)
	}
	// One sample is not a rate.
	st2 := NewStore(4)
	st2.Ingest(base, counterAt(1))
	if _, ok := st2.Rate("c_total", nil, time.Hour); ok {
		t.Fatal("Rate with one sample should not be ok")
	}
}

func TestGaugeStats(t *testing.T) {
	st := NewStore(16)
	base := t0()
	for i, v := range []float64{5, 1, 9, 3} {
		st.Ingest(base.Add(time.Duration(i)*time.Second), []obs.Metric{obs.Gauge("g", "", v)})
	}
	last, min, max, mean, ok := st.GaugeStats("g", nil, time.Hour)
	if !ok || last != 3 || min != 1 || max != 9 || mean != 4.5 {
		t.Fatalf("GaugeStats = %g %g %g %g %v; want 3 1 9 4.5 true", last, min, max, mean, ok)
	}
	// 1s window: only the newest two samples (9, 3).
	_, min, max, _, ok = st.GaugeStats("g", nil, time.Second)
	if !ok || min != 3 || max != 9 {
		t.Fatalf("windowed GaugeStats min/max = %g/%g, want 3/9", min, max)
	}
}

func histMetric(h *obs.Histogram) []obs.Metric {
	return []obs.Metric{obs.HistogramSample("h_seconds", "", h)}
}

func TestWindowHistogram(t *testing.T) {
	st := NewStore(16)
	base := t0()
	h := obs.NewHistogram(obs.LatencyBuckets...)
	h.Observe(0.001)
	h.Observe(0.002)
	st.Ingest(base, histMetric(h))
	h.Observe(0.5)
	st.Ingest(base.Add(time.Second), histMetric(h))

	// Window covering only the newest delta: exactly the 0.5s observation.
	snap, ok := st.WindowHistogram("h_seconds", nil, time.Second)
	if !ok {
		t.Fatal("WindowHistogram not ok")
	}
	if snap.Count != 1 {
		t.Fatalf("windowed Count = %d, want 1 (just the delta)", snap.Count)
	}
	if q := snap.Quantile(0.5); q < 0.1 {
		t.Fatalf("windowed p50 = %g, want ≥ 0.1 (the 0.5s observation)", q)
	}
	// Window wider than retention: falls back to the full since-boot
	// snapshot — observations from before the first sample must not vanish.
	snap, ok = st.WindowHistogram("h_seconds", nil, time.Hour)
	if !ok || snap.Count != 3 {
		t.Fatalf("over-retention window Count = %d, %v; want 3, true", snap.Count, ok)
	}
}

func TestSubtractHistogramClampsResets(t *testing.T) {
	newer := &obs.HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{2, 0}, Count: 2, Sum: 1}
	older := &obs.HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{5, 1}, Count: 6, Sum: 9}
	d := SubtractHistogram(newer, older)
	if d.Count != 0 || d.Sum != 0 {
		t.Fatalf("reset subtraction = count %d sum %g, want 0 0 (clamped)", d.Count, d.Sum)
	}
	// Mismatched bounds: honest fallback is a clone of newer.
	other := &obs.HistogramSnapshot{Bounds: []float64{2}, Counts: []uint64{1, 0}, Count: 1}
	d = SubtractHistogram(newer, other)
	if d.Count != newer.Count {
		t.Fatalf("mismatched-bounds subtraction Count = %d, want %d", d.Count, newer.Count)
	}
}

// TestMergedQuantileBoundedByShards is the rollup's correctness property:
// for identically bounded histograms the merged quantile is the quantile
// of the union of observations, so for any q it must lie within
// [min, max] of the per-shard quantiles (up to bucket resolution, which
// is exact here because quantiles interpolate within shared buckets).
func TestMergedQuantileBoundedByShards(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nShards := 2 + rng.Intn(4)
		shards := make([]*obs.HistogramSnapshot, nShards)
		for i := range shards {
			h := obs.NewHistogram(obs.LatencyBuckets...)
			for j := 0; j < 20+rng.Intn(200); j++ {
				// Spread over ~6 orders of magnitude of latency.
				h.Observe(1e-6 * float64(uint64(1)<<uint(rng.Intn(20))))
			}
			shards[i] = h.Snapshot()
		}
		merged := MergeHistograms(shards...)
		var wantCount uint64
		for _, s := range shards {
			wantCount += s.Count
		}
		if merged.Count != wantCount {
			t.Fatalf("trial %d: merged Count = %d, want %d", trial, merged.Count, wantCount)
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			mq := merged.Quantile(q)
			lo, hi := shards[0].Quantile(q), shards[0].Quantile(q)
			for _, s := range shards[1:] {
				if v := s.Quantile(q); v < lo {
					lo = v
				} else if v > hi {
					hi = v
				}
			}
			const eps = 1e-12
			if mq < lo-eps || mq > hi+eps {
				t.Fatalf("trial %d: merged q%g = %g outside per-shard range [%g, %g]",
					trial, q*100, mq, lo, hi)
			}
		}
	}
}

func TestMergeHistogramsUnionBounds(t *testing.T) {
	a := &obs.HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{1, 1, 0}, Count: 2, Sum: 2.5}
	b := &obs.HistogramSnapshot{Bounds: []float64{2, 4}, Counts: []uint64{2, 0, 1}, Count: 3, Sum: 9}
	m := MergeHistograms(a, b)
	if m.Count != 5 {
		t.Fatalf("union merge Count = %d, want 5", m.Count)
	}
	if m.Sum != 11.5 {
		t.Fatalf("union merge Sum = %g, want 11.5", m.Sum)
	}
	// Union bounds are {1,2,4}; a's counts land exactly, b's le=2 bucket
	// maps to the merged le=2 bucket, b's +Inf observation stays +Inf.
	if len(m.Bounds) != 3 || m.Bounds[0] != 1 || m.Bounds[1] != 2 || m.Bounds[2] != 4 {
		t.Fatalf("union bounds = %v, want [1 2 4]", m.Bounds)
	}
	if m.Counts[len(m.Counts)-1] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", m.Counts[len(m.Counts)-1])
	}
	// Nil and empty inputs are skipped, not fatal.
	if got := MergeHistograms(nil, a, nil); got.Count != a.Count {
		t.Fatalf("nil-skipping merge Count = %d, want %d", got.Count, a.Count)
	}
}

func TestStoreLabelOrderInsensitive(t *testing.T) {
	st := NewStore(8)
	base := t0()
	m := obs.Gauge("g", "", 7, obs.L("a", "1"), obs.L("b", "2"))
	st.Ingest(base, []obs.Metric{m})
	last, _, _, _, ok := st.GaugeStats("g", []obs.Label{obs.L("b", "2"), obs.L("a", "1")}, time.Hour)
	if !ok || last != 7 {
		t.Fatalf("reordered-label lookup = %g, %v; want 7, true", last, ok)
	}
	if _, _, _, _, ok := st.GaugeStats("g", []obs.Label{obs.L("a", "1")}, time.Hour); ok {
		t.Fatal("subset labels must not match")
	}
}

func TestSeriesNamesDeterministic(t *testing.T) {
	st := NewStore(8)
	base := t0()
	for i := 0; i < 3; i++ {
		st.Ingest(base, []obs.Metric{
			obs.Gauge("z", "", 1),
			obs.Gauge("a", "", 2),
			obs.Counter("m_total", "", 3),
		})
	}
	names := st.SeriesNames()
	want := []string{"z", "a", "m_total"}
	if len(names) != len(want) {
		t.Fatalf("SeriesNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("SeriesNames = %v, want first-seen order %v", names, want)
		}
	}
}

func TestHistogramRingWraparound(t *testing.T) {
	st := NewStore(3)
	base := t0()
	h := obs.NewHistogram(obs.LatencyBuckets...)
	// 6 samples through a 3-slot ring, one new observation per tick.
	for i := 0; i < 6; i++ {
		h.Observe(0.001)
		st.Ingest(base.Add(time.Duration(i)*time.Second), histMetric(h))
	}
	// Live window is samples 3..5 (counts 4..6); the widest delta inside
	// retention is newest − oldest-live = 6 − 4 = 2... but a window wider
	// than retention returns the full snapshot (6), never a double count.
	snap, ok := st.WindowHistogram("h_seconds", nil, 2*time.Second)
	if !ok || snap.Count != 2 {
		t.Fatalf("in-retention window Count = %d, %v; want 2, true", snap.Count, ok)
	}
	snap, ok = st.WindowHistogram("h_seconds", nil, time.Hour)
	if !ok || snap.Count != 6 {
		t.Fatalf("over-retention window Count = %d, %v; want 6 (full snapshot), true", snap.Count, ok)
	}
}

func TestSamplerCollectsAndCounts(t *testing.T) {
	reg := obs.NewRegistry()
	var v float64
	reg.Register("t", obs.CollectorFunc(func() []obs.Metric {
		v++
		return []obs.Metric{obs.Counter("ticks_total", "", v)}
	}))
	s := NewSampler(reg, NewStore(8), time.Second)
	base := t0()
	for i := 0; i < 3; i++ {
		s.SampleOnce(base.Add(time.Duration(i) * time.Second))
	}
	if s.Samples() != 3 {
		t.Fatalf("Samples = %d, want 3", s.Samples())
	}
	rate, ok := s.Store.Rate("ticks_total", nil, time.Hour)
	if !ok || rate != 1 {
		t.Fatalf("sampled rate = %g, %v; want 1, true", rate, ok)
	}
	var fromHook uint64
	s.OnSample(func(now time.Time, st *Store) { fromHook++ })
	s.SampleOnce(base.Add(3 * time.Second))
	if fromHook != 1 {
		t.Fatalf("hook ran %d times, want 1", fromHook)
	}
	mets := s.Collector().Collect()
	if len(mets) != 3 {
		t.Fatalf("sampler collector emitted %d metrics, want 3", len(mets))
	}
}

// TestSamplerRaceUnderRegistryMutation exercises the sampler loop while
// collectors are registered and unregistered concurrently — the shape of
// a node enabling spans/diag surfaces at runtime. Run with -race.
func TestSamplerRaceUnderRegistryMutation(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Register("base", obs.CollectorFunc(func() []obs.Metric {
		return []obs.Metric{obs.Gauge("g", "", 1)}
	}))
	s := NewSampler(reg, NewStore(32), time.Millisecond)
	s.Start()
	s.Start() // double-start is a no-op
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			name := fmt.Sprintf("dyn%d", i%4)
			reg.Register(name, obs.CollectorFunc(func() []obs.Metric {
				return []obs.Metric{obs.Counter("dyn_total", "", float64(i))}
			}))
			reg.Unregister(name)
		}
	}()
	// Queries race the sampling loop too.
	for i := 0; i < 50; i++ {
		s.Store.GaugeStats("g", nil, time.Minute)
		s.Store.SeriesNames()
	}
	<-done
	s.Stop()
	s.Stop() // double-stop is a no-op
}
