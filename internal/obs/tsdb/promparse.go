package tsdb

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// ParsePrometheus is the scrape side of obs.WritePrometheus: it reads a
// text exposition (version 0.0.4) back into obs.Metric samples, including
// reassembling _bucket/_sum/_count series into histogram snapshots with
// per-bucket (de-cumulated) counts. It is what lets stingtop poll every
// node's existing /metrics endpoint and merge the results with no new
// wire protocol.
//
// The parser is deliberately tolerant: unknown comment lines are skipped,
// families without a # TYPE default to untyped gauges, and a malformed
// line fails the whole parse with its line number (a scrape of a healthy
// node should never be partially wrong).
func ParsePrometheus(r io.Reader) ([]obs.Metric, error) {
	types := make(map[string]obs.MetricKind)
	var scalars []obs.Metric
	hists := make(map[string]*histAccum) // family+labels (sans le)
	var histOrder []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter":
					types[fields[2]] = obs.KindCounter
				case "histogram":
					types[fields[2]] = obs.KindHistogram
				default:
					types[fields[2]] = obs.KindGauge
				}
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("promparse: line %d: %v", lineNo, err)
		}
		if fam, part := histFamily(name, types); fam != "" {
			key := fam + "|" + labelKeySansLE(labels)
			acc, ok := hists[key]
			if !ok {
				acc = &histAccum{family: fam, labels: dropLE(labels)}
				hists[key] = acc
				histOrder = append(histOrder, key)
			}
			switch part {
			case "bucket":
				le := leValue(labels)
				acc.buckets = append(acc.buckets, bucketSample{le: le, cum: uint64(value)})
			case "sum":
				acc.sum = value
			case "count":
				acc.count = uint64(value)
			}
			continue
		}
		kind, ok := types[name]
		if !ok {
			kind = obs.KindGauge
		}
		scalars = append(scalars, obs.Metric{Name: name, Kind: kind, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("promparse: %w", err)
	}
	out := scalars
	for _, key := range histOrder {
		acc := hists[key]
		snap, err := acc.snapshot()
		if err != nil {
			return nil, fmt.Errorf("promparse: %s: %v", acc.family, err)
		}
		out = append(out, obs.Metric{Name: acc.family, Kind: obs.KindHistogram, Labels: acc.labels, Hist: snap})
	}
	return out, nil
}

// histFamily reports whether name is a histogram component series of a
// family declared `# TYPE <fam> histogram`, returning the family and the
// component ("bucket", "sum", "count"); ("", "") otherwise.
func histFamily(name string, types map[string]obs.MetricKind) (fam, part string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok && types[base] == obs.KindHistogram {
			return base, suffix[1:]
		}
	}
	return "", ""
}

type bucketSample struct {
	le  float64
	cum uint64
}

type histAccum struct {
	family  string
	labels  []obs.Label
	buckets []bucketSample
	sum     float64
	count   uint64
}

// snapshot turns the accumulated cumulative buckets back into the
// per-bucket form obs.HistogramSnapshot carries.
func (a *histAccum) snapshot() (*obs.HistogramSnapshot, error) {
	sort.Slice(a.buckets, func(i, j int) bool { return a.buckets[i].le < a.buckets[j].le })
	snap := &obs.HistogramSnapshot{Sum: a.sum}
	var prev uint64
	for _, b := range a.buckets {
		if math.IsInf(b.le, 1) {
			if b.cum < prev {
				return nil, fmt.Errorf("+Inf bucket %d below prior cumulative %d", b.cum, prev)
			}
			snap.Counts = append(snap.Counts, b.cum-prev)
			prev = b.cum
			continue
		}
		if b.cum < prev {
			return nil, fmt.Errorf("bucket le=%g cumulative %d below prior %d", b.le, b.cum, prev)
		}
		snap.Bounds = append(snap.Bounds, b.le)
		snap.Counts = append(snap.Counts, b.cum-prev)
		prev = b.cum
	}
	// A family missing its +Inf bucket still gets a consistent snapshot:
	// the implicit +Inf bucket holds whatever _count exceeds the last
	// cumulative bucket.
	if len(snap.Counts) == len(snap.Bounds) {
		extra := uint64(0)
		if a.count > prev {
			extra = a.count - prev
		}
		snap.Counts = append(snap.Counts, extra)
	}
	for _, c := range snap.Counts {
		snap.Count += c
	}
	return snap, nil
}

func leValue(labels []obs.Label) float64 {
	for _, l := range labels {
		if l.Key == "le" {
			if l.Value == "+Inf" {
				return math.Inf(1)
			}
			v, err := strconv.ParseFloat(l.Value, 64)
			if err == nil {
				return v
			}
		}
	}
	return math.Inf(1)
}

func dropLE(labels []obs.Label) []obs.Label {
	var out []obs.Label
	for _, l := range labels {
		if l.Key != "le" {
			out = append(out, l)
		}
	}
	return out
}

func labelKeySansLE(labels []obs.Label) string {
	return seriesKey("", dropLE(labels))
}

// parseSampleLine reads `name{k="v",…} value [timestamp]`.
func parseSampleLine(line string) (name string, labels []obs.Label, value float64, err error) {
	rest := line
	if brace := strings.IndexByte(rest, '{'); brace >= 0 {
		name = rest[:brace]
		end := strings.IndexByte(rest[brace:], '}')
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		labels, err = parseLabelSet(rest[brace+1 : brace+end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[brace+end+1:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("no value on sample line")
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", nil, 0, fmt.Errorf("no value on sample line")
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", fields[0])
	}
	return name, labels, value, nil
}

// parseLabelSet reads `k="v",k2="v2"`, unescaping \\, \n, and \".
func parseLabelSet(body string) ([]obs.Label, error) {
	var out []obs.Label
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			if strings.TrimSpace(body[i:]) == "" {
				break
			}
			return nil, fmt.Errorf("bad label pair in %q", body)
		}
		key := strings.TrimSpace(body[i : i+eq])
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		i++
		var b strings.Builder
		for i < len(body) {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		out = append(out, obs.L(key, b.String()))
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return out, nil
}
