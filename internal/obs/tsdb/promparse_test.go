package tsdb

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestParsePrometheusRoundTrip writes a mixed metric set through the
// repo's own exposition writer and reads it back: names, kinds, labels,
// values, and reassembled histogram buckets must all survive.
func TestParsePrometheusRoundTrip(t *testing.T) {
	h := obs.NewHistogram(obs.LatencyBuckets...)
	for _, v := range []float64{0.0005, 0.003, 0.003, 0.25} {
		h.Observe(v)
	}
	in := []obs.Metric{
		obs.Counter("sting_ops_total", "Ops.", 42, obs.L("op", "get")),
		obs.Counter("sting_ops_total", "Ops.", 7, obs.L("op", "put")),
		obs.Gauge("sting_depth", "Depth.", 3.5),
		obs.HistogramSample("sting_lat_seconds", "Latency.", h, obs.L("op", "get")),
	}
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}

	byKey := make(map[string]obs.Metric)
	for _, m := range out {
		byKey[seriesKey(m.Name, m.Labels)] = m
	}
	get, ok := byKey[`sting_ops_total{op=get}`]
	if !ok || get.Kind != obs.KindCounter || get.Value != 42 {
		t.Fatalf("counter round-trip = %+v, %v", get, ok)
	}
	if put := byKey[`sting_ops_total{op=put}`]; put.Value != 7 {
		t.Fatalf("second labeled counter = %+v", put)
	}
	if g := byKey["sting_depth"]; g.Kind != obs.KindGauge || g.Value != 3.5 {
		t.Fatalf("gauge round-trip = %+v", g)
	}
	hist, ok := byKey[`sting_lat_seconds{op=get}`]
	if !ok || hist.Kind != obs.KindHistogram || hist.Hist == nil {
		t.Fatalf("histogram round-trip = %+v, %v", hist, ok)
	}
	want := h.Snapshot()
	if hist.Hist.Count != want.Count || hist.Hist.Sum != want.Sum {
		t.Fatalf("histogram count/sum = %d/%g, want %d/%g",
			hist.Hist.Count, hist.Hist.Sum, want.Count, want.Sum)
	}
	if !boundsEqual(hist.Hist.Bounds, want.Bounds) {
		t.Fatalf("bounds = %v, want %v", hist.Hist.Bounds, want.Bounds)
	}
	for i := range want.Counts {
		if hist.Hist.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d = %d, want %d", i, hist.Hist.Counts[i], want.Counts[i])
		}
	}
	// The parsed snapshot answers quantiles like the original.
	if a, b := hist.Hist.Quantile(0.5), want.Quantile(0.5); a != b {
		t.Fatalf("p50 after round-trip = %g, want %g", a, b)
	}
}

func TestParsePrometheusTolerance(t *testing.T) {
	// Untyped family defaults to gauge; unknown comments skipped; escaped
	// label values unescaped; timestamps after the value ignored.
	src := `# HELP whatever something
# weird comment
plain_metric 1.5
labeled{path="a\"b\\c",msg="x\ny"} 2 1712345678
`
	out, err := ParsePrometheus(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("parsed %d metrics, want 2", len(out))
	}
	if out[0].Kind != obs.KindGauge || out[0].Value != 1.5 {
		t.Fatalf("untyped metric = %+v", out[0])
	}
	if out[1].Labels[0].Value != `a"b\c` || out[1].Labels[1].Value != "x\ny" {
		t.Fatalf("unescaped labels = %+v", out[1].Labels)
	}

	// A histogram missing its +Inf bucket still reconciles via _count.
	src = `# TYPE lat histogram
lat_bucket{le="0.1"} 3
lat_sum 0.2
lat_count 5
`
	out, err = ParsePrometheus(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Hist == nil {
		t.Fatalf("parsed %+v", out)
	}
	if out[0].Hist.Count != 5 || out[0].Hist.Counts[1] != 2 {
		t.Fatalf("implicit +Inf bucket = %+v", out[0].Hist)
	}

	// Malformed sample lines fail the whole parse with a line number.
	if _, err := ParsePrometheus(strings.NewReader("good 1\nbad{unclosed 2\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line error = %v, want line 2", err)
	}
	if _, err := ParsePrometheus(strings.NewReader("novalue\n")); err == nil {
		t.Fatal("value-less line accepted")
	}
}
