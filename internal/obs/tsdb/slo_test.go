package tsdb

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseObjective(t *testing.T) {
	o, err := ParseObjective("get-latency: remote.get p99 < 2ms over 30s budget 99.9%")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != "get-latency" || o.Agg != "p99" || o.Op != "<" {
		t.Fatalf("parsed %+v", o)
	}
	if o.Metric.Name != "sting_remote_op_latency_seconds" ||
		len(o.Metric.Labels) != 1 || o.Metric.Labels[0] != obs.L("op", "get") {
		t.Fatalf("alias expansion = %+v", o.Metric)
	}
	if o.Threshold != 0.002 {
		t.Fatalf("duration threshold = %g, want 0.002", o.Threshold)
	}
	if o.Window != 30*time.Second || math.Abs(o.Budget-0.999) > 1e-9 {
		t.Fatalf("window/budget = %v/%g", o.Window, o.Budget)
	}

	o, err = ParseObjective("aborts: sting_stm_aborts_total rate < 5% of sting_stm_commits_total over 60s")
	if err != nil {
		t.Fatal(err)
	}
	if o.Threshold != 0.05 || o.Denom == nil || o.Denom.Name != "sting_stm_commits_total" {
		t.Fatalf("ratio rule = %+v denom %+v", o, o.Denom)
	}

	o, err = ParseObjective("steals: sting_vp_steals_total rate < 10000/s over 30s")
	if err != nil {
		t.Fatal(err)
	}
	if o.Threshold != 10000 {
		t.Fatalf("rate threshold = %g, want 10000", o.Threshold)
	}

	o, err = ParseObjective(`runq: sting_vp_runq_depth{vp="0"} value <= 128`)
	if err != nil {
		t.Fatal(err)
	}
	if o.Window != 60*time.Second {
		t.Fatalf("default window = %v, want 60s", o.Window)
	}
	if len(o.Metric.Labels) != 1 || o.Metric.Labels[0] != obs.L("vp", "0") {
		t.Fatalf("labels = %+v", o.Metric.Labels)
	}

	for _, bad := range []string{
		"no-colon-rule",
		"x: metric p42 < 1 over 10s",             // unknown agg
		"x: metric p99 ~ 1 over 10s",             // unknown op
		"x: metric p99 < banana over 10s",        // bad threshold
		"x: metric p99 < 1 over -10s",            // bad window
		"x: metric rate < 5% over 10s",           // % rate without denominator
		"x: metric p99 < 1 of other over 10s",    // of without rate
		"x: metric p99 < 1 over 10s budget 150%", // budget out of range
		"x: metric{op=get p99 < 1 over 10s",      // unterminated labels
	} {
		if _, err := ParseObjective(bad); err == nil {
			t.Errorf("ParseObjective(%q) accepted, want error", bad)
		}
	}
}

func TestParseObjectives(t *testing.T) {
	src := `
# latency
a: remote.get p99 < 2ms over 60s
b: stm.commit p95 < 1ms over 30s; c: sting_remote_conns_active value < 100 over 10s
`
	objs, err := ParseObjectives(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("parsed %d objectives, want 3", len(objs))
	}
	if _, err := ParseObjectives("a: x value < 1 over 1s\na: y value < 1 over 1s"); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate names = %v, want duplicate error", err)
	}
}

func TestClassifyWarnBand(t *testing.T) {
	lt := &Objective{Op: "<", Threshold: 10}
	if s := classify(lt, 5); s != StateOK {
		t.Fatalf("5 < 10 = %v, want ok", s)
	}
	if s := classify(lt, 9); s != StateWarn {
		t.Fatalf("9 < 10 (past 80%%) = %v, want warn", s)
	}
	if s := classify(lt, 11); s != StateBreach {
		t.Fatalf("11 < 10 = %v, want breach", s)
	}
	gt := &Objective{Op: ">", Threshold: 10}
	if s := classify(gt, 20); s != StateOK {
		t.Fatalf("20 > 10 = %v, want ok", s)
	}
	if s := classify(gt, 11); s != StateWarn {
		t.Fatalf("11 > 10 (within 1/0.8×) = %v, want warn", s)
	}
	if s := classify(gt, 9); s != StateBreach {
		t.Fatalf("9 > 10 = %v, want breach", s)
	}
}

func TestSLOEngineEvaluateAndBudget(t *testing.T) {
	objs, err := ParseObjectives("lat: h_seconds p99 < 1ms over 60s budget 50%\n" +
		"depth: g value < 100 over 60s")
	if err != nil {
		t.Fatal(err)
	}
	e := NewSLOEngine(objs)
	st := NewStore(16)
	base := t0()

	// No data yet: both nodata, no budget consumed.
	sts := e.Evaluate(base, st)
	if sts[0].State != "nodata" || sts[1].State != "nodata" {
		t.Fatalf("empty-store states = %s/%s, want nodata", sts[0].State, sts[1].State)
	}
	if sts[0].EvalsTotal != 0 {
		t.Fatal("nodata tick consumed an evaluation")
	}

	h := obs.NewHistogram(obs.LatencyBuckets...)
	h.Observe(0.5) // far over the 1ms threshold
	st.Ingest(base, []obs.Metric{
		obs.HistogramSample("h_seconds", "", h),
		obs.Gauge("g", "", 10),
	})
	sts = e.Evaluate(base.Add(time.Second), st)
	if sts[0].State != "breach" {
		t.Fatalf("slow histogram state = %s, want breach", sts[0].State)
	}
	if sts[1].State != "ok" {
		t.Fatalf("gauge state = %s, want ok", sts[1].State)
	}
	// Budget 50%: one breach over one eval = burn 1/0.5 = 2.
	if sts[0].BudgetBurn != 2 {
		t.Fatalf("budget burn = %g, want 2", sts[0].BudgetBurn)
	}
	if got := e.Breaching(); len(got) != 1 || got[0] != "lat" {
		t.Fatalf("Breaching = %v, want [lat]", got)
	}

	// Statuses without re-measuring returns the same rows.
	again := e.Statuses()
	if again[0].State != "breach" || again[0].EvalsTotal != 1 {
		t.Fatalf("Statuses = %+v", again[0])
	}

	// Collector exposes state -1..2 per objective with the slo label.
	mets := e.Collector().Collect()
	found := false
	for _, m := range mets {
		if m.Name == "sting_slo_state" && len(m.Labels) == 1 && m.Labels[0] == obs.L("slo", "lat") {
			found = true
			if m.Value != 2 {
				t.Fatalf("sting_slo_state{slo=lat} = %g, want 2", m.Value)
			}
		}
	}
	if !found {
		t.Fatal("sting_slo_state{slo=lat} not exposed")
	}
}

func TestSLORateRatio(t *testing.T) {
	objs, err := ParseObjectives("aborts: a_total rate < 50% of c_total over 60s")
	if err != nil {
		t.Fatal(err)
	}
	e := NewSLOEngine(objs)
	st := NewStore(16)
	base := t0()
	// aborts 2/s, commits 10/s → ratio 0.2, under the 0.5 threshold.
	for i := 0; i < 3; i++ {
		st.Ingest(base.Add(time.Duration(i)*time.Second), []obs.Metric{
			obs.Counter("a_total", "", float64(2*i)),
			obs.Counter("c_total", "", float64(10*i)),
		})
	}
	sts := e.Evaluate(base.Add(2*time.Second), st)
	if sts[0].State != "ok" || sts[0].Value != 0.2 {
		t.Fatalf("ratio eval = %s %g, want ok 0.2", sts[0].State, sts[0].Value)
	}

	// Numerator moves, denominator flat → maximally bad, breach.
	st2 := NewStore(16)
	for i := 0; i < 3; i++ {
		st2.Ingest(base.Add(time.Duration(i)*time.Second), []obs.Metric{
			obs.Counter("a_total", "", float64(5*i)),
			obs.Counter("c_total", "", 7),
		})
	}
	sts = NewSLOEngine(objs).Evaluate(base.Add(2*time.Second), st2)
	if sts[0].State != "breach" {
		t.Fatalf("zero-denominator ratio = %s %g, want breach", sts[0].State, sts[0].Value)
	}
}

func TestWorstState(t *testing.T) {
	sts := []Status{{State: "ok"}, {State: "warn"}, {State: "nodata"}}
	if got := WorstState(sts); got != StateWarn {
		t.Fatalf("WorstState = %v, want warn", got)
	}
	sts = append(sts, Status{State: "breach"})
	if got := WorstState(sts); got != StateBreach {
		t.Fatalf("WorstState = %v, want breach", got)
	}
	if got := WorstState(nil); got != StateNoData {
		t.Fatalf("empty WorstState = %v, want nodata", got)
	}
}
