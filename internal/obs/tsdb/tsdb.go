// Package tsdb is the substrate's in-process time-series layer: a
// dependency-free store that retains a trailing window of every metric a
// registry exposes, so questions that a point-in-time /metrics scrape
// cannot answer — "what was the p99 over the last minute", "what is the
// abort *rate*, not the abort count since boot" — become answerable
// without an external Prometheus.
//
// A Sampler polls an obs.Registry on a fixed interval and appends each
// sample into per-series fixed-size ring buffers: counters keep their raw
// cumulative values (windowed rates are computed reset-safely from
// consecutive deltas), gauges keep raw values (last/min/max/avg over any
// trailing window), and histograms retain whole bucket snapshots, so a
// quantile is computable over any trailing window by subtracting the
// snapshot at the window's start from the one at its end.
//
// The same bucket arithmetic powers the cross-node rollup: MergeHistograms
// adds shard histograms bucket-by-bucket, which is exact for identically
// bounded histograms (every histogram in this repository uses
// obs.LatencyBuckets), so `stingtop` computes true cluster-wide quantiles
// instead of averaging per-shard ones.
//
// On top sits the SLO engine (slo.go): declarative objectives evaluated
// against the store every sample into ok/warn/breach states with
// error-budget burn accounting, exposed at /debug/slo and as sting_slo_*
// metrics so breaches are themselves scrapeable.
package tsdb

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultCapacity is the per-series ring size: at the default 1s sample
// interval it retains 10 minutes of history, comfortably covering the
// longest SLO windows anyone writes while bounding memory per series.
const DefaultCapacity = 600

// Point is one scalar sample.
type Point struct {
	T time.Time
	V float64
}

// HistPoint is one retained histogram snapshot.
type HistPoint struct {
	T    time.Time
	Snap *obs.HistogramSnapshot
}

// Series is the retained history of one (name, labels) metric stream.
// Scalar kinds fill pts; histograms fill hist. The ring is owned by the
// Store's lock.
type Series struct {
	Name   string
	Labels []obs.Label
	Kind   obs.MetricKind

	pts  []Point
	hist []HistPoint
	head int // next write position
	n    int // filled entries, ≤ cap
}

// appendPoint writes one scalar sample into the ring, overwriting the
// oldest entry once full. Wraparound never double-counts: an overwritten
// entry is gone, and every read walks only the n live entries.
func (s *Series) appendPoint(p Point) {
	if s.n < len(s.pts) {
		s.pts[(s.head+s.n)%len(s.pts)] = p
		s.n++
		return
	}
	s.pts[s.head] = p
	s.head = (s.head + 1) % len(s.pts)
}

func (s *Series) appendHist(p HistPoint) {
	if s.n < len(s.hist) {
		s.hist[(s.head+s.n)%len(s.hist)] = p
		s.n++
		return
	}
	s.hist[s.head] = p
	s.head = (s.head + 1) % len(s.hist)
}

// at returns the i-th oldest live scalar sample (0 ≤ i < n).
func (s *Series) at(i int) Point { return s.pts[(s.head+i)%len(s.pts)] }

// histAt returns the i-th oldest live histogram sample.
func (s *Series) histAt(i int) HistPoint { return s.hist[(s.head+i)%len(s.hist)] }

// Len reports how many live samples the series holds.
func (s *Series) Len() int { return s.n }

// Store holds every series' ring. All methods are safe for concurrent
// use; Ingest is called by the Sampler, queries by the SLO engine and the
// HTTP surface.
type Store struct {
	mu     sync.RWMutex
	cap    int
	series map[string]*Series
	order  []string // insertion-ordered keys for deterministic listing
}

// NewStore creates a store with the given per-series ring capacity
// (≤0 means DefaultCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{cap: capacity, series: make(map[string]*Series)}
}

// seriesKey identifies a series: family name plus rendered labels.
func seriesKey(name string, labels []obs.Label) string {
	if len(labels) == 0 {
		return name
	}
	k := name + "{"
	for i, l := range labels {
		if i > 0 {
			k += ","
		}
		k += l.Key + "=" + l.Value
	}
	return k + "}"
}

// Ingest appends one gathered snapshot, stamped t, into the rings.
func (st *Store) Ingest(t time.Time, metrics []obs.Metric) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, m := range metrics {
		key := seriesKey(m.Name, m.Labels)
		s, ok := st.series[key]
		if !ok {
			s = &Series{Name: m.Name, Labels: append([]obs.Label(nil), m.Labels...), Kind: m.Kind}
			if m.Kind == obs.KindHistogram {
				s.hist = make([]HistPoint, st.cap)
			} else {
				s.pts = make([]Point, st.cap)
			}
			st.series[key] = s
			st.order = append(st.order, key)
		}
		if m.Kind == obs.KindHistogram {
			if s.hist != nil {
				s.appendHist(HistPoint{T: t, Snap: m.Hist})
			}
		} else if s.pts != nil {
			s.appendPoint(Point{T: t, V: m.Value})
		}
	}
}

// SeriesNames lists every retained series key in first-seen order.
func (st *Store) SeriesNames() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return append([]string(nil), st.order...)
}

// lookup finds the series for (name, labels); labels match exactly
// (order-insensitive).
func (st *Store) lookup(name string, labels []obs.Label) *Series {
	if s, ok := st.series[seriesKey(name, labels)]; ok {
		return s
	}
	// Label order may differ between the selector and the collector;
	// fall back to a scan with set comparison.
	for _, s := range st.series {
		if s.Name == name && labelsMatch(s.Labels, labels) {
			return s
		}
	}
	return nil
}

func labelsMatch(a, b []obs.Label) bool {
	if len(a) != len(b) {
		return false
	}
	for _, la := range a {
		found := false
		for _, lb := range b {
			if la == lb {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Rate computes the windowed per-second rate of a counter series over the
// trailing window ending at the newest sample. It sums only positive
// deltas between consecutive samples, so a process restart (counter
// reset) costs the one increment that spanned it instead of producing a
// huge negative spike. ok=false means fewer than two in-window samples.
func (st *Store) Rate(name string, labels []obs.Label, window time.Duration) (rate float64, ok bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := st.lookup(name, labels)
	if s == nil || s.n < 2 || s.pts == nil {
		return 0, false
	}
	newest := s.at(s.n - 1)
	cutoff := newest.T.Add(-window)
	// Find the anchor: the newest sample at or before the cutoff when one
	// exists (so the window is fully covered), else the oldest retained.
	first := 0
	for i := s.n - 1; i >= 0; i-- {
		first = i
		if !s.at(i).T.After(cutoff) {
			break
		}
	}
	if first == s.n-1 {
		return 0, false
	}
	var sum float64
	prev := s.at(first)
	for i := first + 1; i < s.n; i++ {
		cur := s.at(i)
		if d := cur.V - prev.V; d > 0 {
			sum += d
		}
		prev = cur
	}
	elapsed := newest.T.Sub(s.at(first).T).Seconds()
	if elapsed <= 0 {
		return 0, false
	}
	return sum / elapsed, true
}

// GaugeStats summarizes a gauge (or counter value) series over the
// trailing window: last, min, max, and mean of the in-window samples.
func (st *Store) GaugeStats(name string, labels []obs.Label, window time.Duration) (last, min, max, mean float64, ok bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := st.lookup(name, labels)
	if s == nil || s.n == 0 || s.pts == nil {
		return 0, 0, 0, 0, false
	}
	newest := s.at(s.n - 1)
	cutoff := newest.T.Add(-window)
	var sum float64
	count := 0
	for i := s.n - 1; i >= 0; i-- {
		p := s.at(i)
		if p.T.Before(cutoff) {
			break
		}
		if count == 0 {
			min, max = p.V, p.V
		} else {
			if p.V < min {
				min = p.V
			}
			if p.V > max {
				max = p.V
			}
		}
		sum += p.V
		count++
	}
	if count == 0 {
		return 0, 0, 0, 0, false
	}
	return newest.V, min, max, sum / float64(count), true
}

// WindowHistogram returns the histogram of observations that landed
// inside the trailing window: the newest retained snapshot minus the
// snapshot at the window's start, bucket by bucket (clamped at zero so a
// reset degrades to the since-restart histogram instead of going
// negative). With only one retained sample the full snapshot is returned
// — since-boot is the best available answer early in a process's life.
func (st *Store) WindowHistogram(name string, labels []obs.Label, window time.Duration) (*obs.HistogramSnapshot, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := st.lookup(name, labels)
	if s == nil || s.n == 0 || s.hist == nil {
		return nil, false
	}
	newest := s.histAt(s.n - 1)
	if newest.Snap == nil {
		return nil, false
	}
	cutoff := newest.T.Add(-window)
	// The baseline is the newest sample at or before the cutoff. When no
	// retained sample is that old — the window reaches past retention, or
	// sampling just started — the baseline is zero and the full newest
	// snapshot is returned: since-boot is the best available answer early
	// in a process's life, and it converges to the true windowed view as
	// soon as retention covers the window.
	var base *obs.HistogramSnapshot
	for i := s.n - 1; i >= 0; i-- {
		p := s.histAt(i)
		if !p.T.After(cutoff) {
			base = p.Snap
			break
		}
	}
	if base == nil {
		return cloneSnap(newest.Snap), true
	}
	return SubtractHistogram(newest.Snap, base), true
}

func cloneSnap(s *obs.HistogramSnapshot) *obs.HistogramSnapshot {
	out := &obs.HistogramSnapshot{
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: append([]uint64(nil), s.Counts...),
		Count:  s.Count,
		Sum:    s.Sum,
	}
	return out
}

// SubtractHistogram computes newer−older bucket-wise, clamping each bucket
// (and the sum) at zero so counter resets degrade gracefully. Bounds must
// match; mismatched bounds return a clone of newer (the only honest
// answer when the bucket layout changed underneath the window).
func SubtractHistogram(newer, older *obs.HistogramSnapshot) *obs.HistogramSnapshot {
	if older == nil || !boundsEqual(newer.Bounds, older.Bounds) || len(newer.Counts) != len(older.Counts) {
		return cloneSnap(newer)
	}
	out := &obs.HistogramSnapshot{
		Bounds: append([]float64(nil), newer.Bounds...),
		Counts: make([]uint64, len(newer.Counts)),
	}
	for i := range newer.Counts {
		if newer.Counts[i] > older.Counts[i] {
			out.Counts[i] = newer.Counts[i] - older.Counts[i]
		}
		out.Count += out.Counts[i]
	}
	if d := newer.Sum - older.Sum; d > 0 {
		out.Sum = d
	}
	return out
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MergeHistograms adds snapshots bucket-by-bucket into one cluster-wide
// histogram. Identically bounded inputs (the only kind this repository
// produces) merge exactly: the merged quantile is the true quantile of
// the union of observations, so it is always bounded by the per-shard
// quantiles. Inputs whose bounds differ are merged on the union of the
// bound sets, attributing each bucket's count to the first merged bucket
// that covers its upper bound — conservative (never under-reports a
// quantile) but lossy; nil inputs are skipped.
func MergeHistograms(snaps ...*obs.HistogramSnapshot) *obs.HistogramSnapshot {
	var live []*obs.HistogramSnapshot
	for _, s := range snaps {
		if s != nil && len(s.Counts) > 0 {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return &obs.HistogramSnapshot{}
	}
	bounds := live[0].Bounds
	same := true
	for _, s := range live[1:] {
		if !boundsEqual(s.Bounds, bounds) {
			same = false
			break
		}
	}
	if !same {
		bounds = unionBounds(live)
	}
	out := &obs.HistogramSnapshot{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
	}
	for _, s := range live {
		if same {
			for i, c := range s.Counts {
				if i < len(out.Counts) {
					out.Counts[i] += c
				}
			}
		} else {
			for i, c := range s.Counts {
				out.Counts[mergeBucket(bounds, s.Bounds, i)] += c
			}
		}
		out.Sum += s.Sum
	}
	for _, c := range out.Counts {
		out.Count += c
	}
	return out
}

// unionBounds merges the bound sets of several snapshots, sorted and
// deduplicated.
func unionBounds(snaps []*obs.HistogramSnapshot) []float64 {
	seen := make(map[float64]bool)
	var out []float64
	for _, s := range snaps {
		for _, b := range s.Bounds {
			if !seen[b] {
				seen[b] = true
				out = append(out, b)
			}
		}
	}
	sort.Float64s(out)
	return out
}

// mergeBucket maps source bucket i (of srcBounds) into the merged bound
// set: the first merged bucket whose upper bound is ≥ the source bucket's
// upper bound; the +Inf bucket maps to +Inf.
func mergeBucket(merged, srcBounds []float64, i int) int {
	if i >= len(srcBounds) {
		return len(merged) // +Inf
	}
	j := sort.SearchFloat64s(merged, srcBounds[i])
	if j >= len(merged) {
		return len(merged)
	}
	return j
}
