package tsdb

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// DefaultInterval is the sampling period when none is configured: one
// second resolves every SLO window anyone writes (the shortest useful
// window is a few seconds) while keeping the gather cost — a lock-free
// snapshot walk — far below the 5% observability overhead gate.
const DefaultInterval = time.Second

// Sampler periodically gathers a registry into a Store and drives any
// registered per-sample hooks (the SLO engine evaluates from one). It
// runs on a plain goroutine — sampling is bookkeeping about the
// substrate, not work the substrate should schedule.
type Sampler struct {
	Registry *obs.Registry
	Store    *Store
	// Interval between samples (≤0: DefaultInterval).
	Interval time.Duration

	mu      sync.Mutex
	hooks   []func(now time.Time, st *Store)
	stop    chan struct{}
	done    chan struct{}
	samples atomic.Uint64
	lastNs  atomic.Int64 // duration of the last SampleOnce, ns
}

// NewSampler builds a sampler over reg feeding store.
func NewSampler(reg *obs.Registry, store *Store, interval time.Duration) *Sampler {
	return &Sampler{Registry: reg, Store: store, Interval: interval}
}

// OnSample registers a hook run after every sample with the store already
// updated — the SLO engine's evaluation tick. Hooks run on the sampler
// goroutine; keep them short.
func (s *Sampler) OnSample(f func(now time.Time, st *Store)) {
	s.mu.Lock()
	s.hooks = append(s.hooks, f)
	s.mu.Unlock()
}

// SampleOnce gathers and ingests one snapshot stamped now, then runs the
// hooks. Exposed so tests and -once tools drive the pipeline without a
// goroutine.
func (s *Sampler) SampleOnce(now time.Time) {
	t0 := time.Now()
	s.Store.Ingest(now, s.Registry.Gather())
	s.mu.Lock()
	hooks := append([]func(now time.Time, st *Store){}, s.hooks...)
	s.mu.Unlock()
	for _, f := range hooks {
		f(now, s.Store)
	}
	s.samples.Add(1)
	s.lastNs.Store(int64(time.Since(t0)))
}

// Start launches the sampling loop; Stop ends it. Starting an already
// started sampler is a no-op.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	iv := s.Interval
	if iv <= 0 {
		iv = DefaultInterval
	}
	go func(stop, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(iv)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				s.SampleOnce(now)
			}
		}
	}(s.stop, s.done)
}

// Stop halts the loop and waits for the in-flight sample to finish.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Samples reports how many samples have been taken.
func (s *Sampler) Samples() uint64 { return s.samples.Load() }

// Collector exposes the sampler's own accounting:
//
//	sting_tsdb_samples_total      samples taken
//	sting_tsdb_series             series retained in the store
//	sting_tsdb_sample_seconds     duration of the most recent sample
func (s *Sampler) Collector() obs.Collector {
	return obs.CollectorFunc(func() []obs.Metric {
		series := 0
		if s.Store != nil {
			series = len(s.Store.SeriesNames())
		}
		return []obs.Metric{
			obs.Counter("sting_tsdb_samples_total", "Time-series samples taken.", float64(s.samples.Load())),
			obs.Gauge("sting_tsdb_series", "Series retained in the time-series store.", float64(series)),
			obs.Gauge("sting_tsdb_sample_seconds", "Duration of the most recent sample.", float64(s.lastNs.Load())/1e9),
		}
	})
}
