package tsdb

import (
	"encoding/json"
	"net/http"
)

// SLOReport is the /debug/slo document: the node name, the overall
// (worst) state, and every objective's status.
type SLOReport struct {
	Node  string   `json:"node"`
	State string   `json:"state"`
	SLOs  []Status `json:"slos"`
}

// WorstState folds statuses into the rollup state: the maximum severity,
// with nodata only surfacing when nothing has data at all.
func WorstState(statuses []Status) SLOState {
	worst := StateNoData
	for _, s := range statuses {
		if st := ParseSLOState(s.State); st > worst {
			worst = st
		}
	}
	return worst
}

// Handler serves the SLO engine's current statuses as JSON at /debug/slo.
// Evaluation happens on the sampler tick, not per request, so a scrape
// storm cannot multiply measurement work.
type Handler struct {
	Engine *SLOEngine
	Node   string
}

// ServeHTTP implements http.Handler.
func (h Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.Engine == nil {
		http.Error(w, "slo engine not enabled", http.StatusNotFound)
		return
	}
	statuses := h.Engine.Statuses()
	node := h.Node
	if node == "" {
		node = "sting"
	}
	rep := SLOReport{Node: node, State: WorstState(statuses).String(), SLOs: statuses}
	if rep.SLOs == nil {
		rep.SLOs = []Status{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}
