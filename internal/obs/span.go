package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the substrate's causal-tracing model: spans with 128-bit
// trace identity that travel with a computation across forked threads, the
// wire protocol, and cluster fan-out, so "where did this request spend its
// time, across every shard it touched?" has an answer. Like the metrics
// model it imports nothing from the rest of the repository; core, remote,
// and cluster all thread SpanContext values through without cycles.

// TraceID identifies one end-to-end trace: 128 bits so independently
// started traces on different nodes never collide.
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the id is the absent value.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

func (id TraceID) String() string { return fmt.Sprintf("%016x%016x", id.Hi, id.Lo) }

// SpanID identifies one span within a trace.
type SpanID uint64

func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// SpanKind classifies a span's position relative to the wire.
type SpanKind int

// Span kinds.
const (
	SpanInternal SpanKind = iota // in-process work (thread evaluation, fan-out branches)
	SpanClient                   // the requesting half of a wire operation
	SpanServer                   // the serving half of a wire operation
)

func (k SpanKind) String() string {
	switch k {
	case SpanInternal:
		return "internal"
	case SpanClient:
		return "client"
	case SpanServer:
		return "server"
	default:
		return fmt.Sprintf("SpanKind(%d)", int(k))
	}
}

// ParseSpanKind inverts SpanKind.String (for dump decoding); unknown
// strings fall back to internal.
func ParseSpanKind(s string) SpanKind {
	switch s {
	case "client":
		return SpanClient
	case "server":
		return SpanServer
	default:
		return SpanInternal
	}
}

// SpanContext is the propagated part of a span: what a forked thread
// inherits alongside its fluid environment, and what the wire extension
// carries. The zero value means "no trace active" and costs one comparison
// to test.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a live trace.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && sc.Span != 0 }

// Attr is one bounded key=value span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanEvent is one timestamped point annotation within a span (scheduler
// transitions, cancellations, failover hops).
type SpanEvent struct {
	TimeNanos int64  `json:"time_ns"`
	Name      string `json:"name"`
}

// Bounds on per-span annotations, so a hot loop annotating a span cannot
// grow it without limit; overflow is counted, not silently dropped.
const (
	maxSpanAttrs  = 8
	maxSpanEvents = 16
)

// SpanData is one finished span: the immutable record a Span emits to the
// sink at End. Everything a collector or exporter touches is this type —
// live Spans never escape the thread mutating them.
type SpanData struct {
	Trace         TraceID
	Span          SpanID
	Parent        SpanID // 0 for trace roots
	Name          string
	Kind          SpanKind
	StartNanos    int64
	DurationNanos int64
	Attrs         []Attr
	Events        []SpanEvent
	EventsDropped int // annotations beyond maxSpanEvents
}

// SpanSink receives finished spans; it runs on the ending goroutine and
// must be brief and thread-safe (SpanBuffer.Record qualifies).
type SpanSink func(*SpanData)

// spanSink is the process-wide sink; nil (the default) makes StartSpan
// return nil, so untraced programs pay one atomic load per site.
var spanSink atomic.Pointer[SpanSink]

// SetSpanSink installs the process-wide span sink; nil disables spans.
func SetSpanSink(s SpanSink) {
	if s == nil {
		spanSink.Store(nil)
		return
	}
	spanSink.Store(&s)
}

// CurrentSpanSink returns the installed sink (nil when spans are off), so
// a caller installing a temporary sink can restore the previous one.
func CurrentSpanSink() SpanSink {
	if p := spanSink.Load(); p != nil {
		return *p
	}
	return nil
}

// DisableSpans is the span-overhead ablation switch (the analogue of
// ServerConfig.DisableMetrics): while true, StartSpan returns nil even
// with a sink installed, so every annotation site degrades to a nil check.
var DisableSpans atomic.Bool

// openSpans counts started-but-unended spans; tests assert it returns to
// its starting value to prove no branch leaks an open span.
var openSpans atomic.Int64

// OpenSpans reports the number of spans started but not yet ended.
func OpenSpans() int64 { return openSpans.Load() }

// Span is a live, in-progress span. It is mutex-guarded so annotations
// from the owning thread and a racing waker never tear; every method is
// nil-safe, letting call sites stay unconditional.
type Span struct {
	mu    sync.Mutex
	data  SpanData
	ended bool
	sink  SpanSink
}

// StartSpan opens a span under parent (a fresh trace when parent is the
// zero context). It returns nil — on which every method is a no-op — when
// no sink is installed or DisableSpans is set, so tracing costs one atomic
// load when off.
func StartSpan(parent SpanContext, name string, kind SpanKind) *Span {
	return StartSpanAt(parent, name, kind, time.Now().UnixNano())
}

// StartSpanAt is StartSpan with an explicit start time, for spans whose
// logical start precedes their creation (a server span measured from frame
// arrival, park time included).
func StartSpanAt(parent SpanContext, name string, kind SpanKind, startNanos int64) *Span {
	h := spanSink.Load()
	if h == nil || DisableSpans.Load() {
		return nil
	}
	s := &Span{
		data: SpanData{
			Span:       SpanID(nextID()),
			Name:       name,
			Kind:       kind,
			StartNanos: startNanos,
		},
		sink: *h,
	}
	if parent.Valid() {
		s.data.Trace = parent.Trace
		s.data.Parent = parent.Span
	} else {
		s.data.Trace = NewTraceID()
	}
	openSpans.Add(1)
	return s
}

// Context returns the propagation context naming this span as parent; the
// zero context on a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.data.Trace, Span: s.data.Span}
}

// SetAttr annotates the span (bounded; a repeated key overwrites). No-op
// on nil or ended spans.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	for i := range s.data.Attrs {
		if s.data.Attrs[i].Key == key {
			s.data.Attrs[i].Value = value
			return
		}
	}
	if len(s.data.Attrs) < maxSpanAttrs {
		s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
	}
}

// Event records a timestamped point annotation (bounded; overflow counts
// into EventsDropped). No-op on nil or ended spans.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if len(s.data.Events) >= maxSpanEvents {
		s.data.EventsDropped++
		return
	}
	s.data.Events = append(s.data.Events, SpanEvent{TimeNanos: now, Name: name})
}

// End closes the span and emits its record to the sink. Idempotent; no-op
// on nil spans. Annotations after End are dropped, so a racing waker
// cannot mutate an emitted record.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.DurationNanos = time.Now().UnixNano() - s.data.StartNanos
	rec := s.data
	sink := s.sink
	s.mu.Unlock()
	openSpans.Add(-1)
	sink(&rec)
}

// id generation ------------------------------------------------------------
//
// splitmix64 over an atomic counter: collision-free within a process,
// seeded by wall clock so concurrently booted nodes diverge, and free of
// crypto/rand (no syscall per span).

var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ 0x9e3779b97f4a7c15)
}

func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // 0 means "absent" everywhere; never mint it
	}
	return x
}

// NewTraceID mints a fresh 128-bit trace id.
func NewTraceID() TraceID { return TraceID{Hi: nextID(), Lo: nextID()} }
