// Package obs is the substrate's unified observability layer: a
// dependency-free metrics registry that Collector sources register into,
// producing one coherent snapshot model (counters, gauges, and fixed-bucket
// lock-free latency histograms), plus Prometheus text exposition, an HTTP
// handler, and a Chrome trace_event exporter for the core trace ring.
//
// The paper positions STING's programming environment as one that must
// support "debugging, profiling, observing the dynamic unfolding of
// computations"; this package is where every subsystem's counters meet a
// scrape. It deliberately imports nothing from the rest of the repository
// (and nothing outside the standard library), so core, tspace, and remote
// can all depend on it without cycles.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MetricKind classifies a sample for exposition.
type MetricKind int

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("MetricKind(%d)", int(k))
	}
}

// Label is one metric dimension; labels are ordered as given.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Metric is one sample in a gathered snapshot. Counter and gauge samples
// carry Value; histogram samples carry Hist.
type Metric struct {
	Name   string
	Help   string
	Kind   MetricKind
	Labels []Label
	Value  float64
	Hist   *HistogramSnapshot
}

// Counter builds a counter sample.
func Counter(name, help string, v float64, labels ...Label) Metric {
	return Metric{Name: name, Help: help, Kind: KindCounter, Value: v, Labels: labels}
}

// Gauge builds a gauge sample.
func Gauge(name, help string, v float64, labels ...Label) Metric {
	return Metric{Name: name, Help: help, Kind: KindGauge, Value: v, Labels: labels}
}

// HistogramSample snapshots h into a histogram sample; nil histograms
// yield an empty snapshot so collectors need no guards.
func HistogramSample(name, help string, h *Histogram, labels ...Label) Metric {
	var snap *HistogramSnapshot
	if h != nil {
		snap = h.Snapshot()
	} else {
		snap = &HistogramSnapshot{Bounds: LatencyBuckets, Counts: make([]uint64, len(LatencyBuckets)+1)}
	}
	return Metric{Name: name, Help: help, Kind: KindHistogram, Hist: snap, Labels: labels}
}

// Collector is a source of metrics; Collect is called on every Gather and
// must be safe for concurrent use.
type Collector interface {
	Collect() []Metric
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func() []Metric

// Collect implements Collector.
func (f CollectorFunc) Collect() []Metric { return f() }

// Registry holds named collector sources and gathers them into one
// coherent, deterministically ordered snapshot.
type Registry struct {
	mu      sync.Mutex
	sources map[string]Collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]Collector)}
}

// defaultRegistry is the process-wide registry embedding programs scrape.
var defaultRegistry = NewRegistry()

// Default returns the process-wide default registry.
func Default() *Registry { return defaultRegistry }

// Register installs c under source, replacing any previous collector of
// that name (re-registration is idiomatic across server restarts).
func (r *Registry) Register(source string, c Collector) {
	r.mu.Lock()
	r.sources[source] = c
	r.mu.Unlock()
}

// Unregister removes the named source.
func (r *Registry) Unregister(source string) {
	r.mu.Lock()
	delete(r.sources, source)
	r.mu.Unlock()
}

// Sources returns the registered source names, sorted.
func (r *Registry) Sources() []string {
	r.mu.Lock()
	out := make([]string, 0, len(r.sources))
	for n := range r.sources {
		out = append(out, n)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// Gather collects every source and returns the combined samples sorted by
// family name then label values, the order exposition wants. Collectors
// run outside the registry lock, so a collector may itself Register.
func (r *Registry) Gather() []Metric {
	r.mu.Lock()
	cs := make([]Collector, 0, len(r.sources))
	names := make([]string, 0, len(r.sources))
	for n := range r.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		cs = append(cs, r.sources[n])
	}
	r.mu.Unlock()
	var out []Metric
	for _, c := range cs {
		out = append(out, c.Collect()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out
}

func labelKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}
