package obs

import (
	"encoding/json"
	"io"
	"strconv"
)

// TraceEvent is the exporter's view of one substrate trace-ring event.
// core.ObsTraceEvents converts the core ring's events to this form; the
// indirection keeps obs free of repository dependencies.
type TraceEvent struct {
	TimeNanos int64  // absolute wall-clock nanoseconds
	Kind      string // create, schedule, dispatch, steal, block, wake, preempt, yield, determine, terminate-request
	Thread    uint64 // thread id, 0 when not applicable
	VP        int    // vp index, -1 when not applicable
}

// chromeEvent is one entry of the Chrome trace_event JSON format
// (Perfetto and chrome://tracing both load it).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`  // flow binding key (ph "s"/"f")
	BP   string         `json:"bp,omitempty"`  // flow binding point ("e": enclosing slice)
	Cat  string         `json:"cat,omitempty"` // category; flow events require one
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// spanName maps the phase a thread entered at a given event kind to the
// slice name rendered for the duration ending at the next event.
func spanName(fromKind string) string {
	switch fromKind {
	case "create":
		return "pending"
	case "schedule", "wake", "yield", "preempt":
		return "queued"
	case "dispatch":
		return "running"
	case "steal":
		return "running (stolen)"
	case "block":
		return "blocked"
	default:
		return ""
	}
}

// WriteChromeTrace renders trace-ring events as Chrome trace_event JSON:
// each thread's lifecycle phases (create→schedule→dispatch→…→determine)
// become duration events placed on the track of the virtual processor that
// ended the phase, so a run opens in Perfetto as one swim-lane per VP.
// Steals and terminate requests appear as instant events.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	var t0 int64
	for i, e := range events {
		if i == 0 || e.TimeNanos < t0 {
			t0 = e.TimeNanos
		}
	}
	micros := func(ns int64) float64 { return float64(ns-t0) / 1e3 }

	type phase struct {
		kind string
		ts   int64
		vp   int
	}
	open := make(map[uint64]phase)
	tids := make(map[int]bool)
	var out []chromeEvent

	// tid maps a VP index to a Chrome thread id; unplaced events (-1)
	// share track 0, VP i lands on track i+1.
	tid := func(vp int) int { return vp + 1 }

	for _, e := range events {
		if p, ok := open[e.Thread]; ok && e.Thread != 0 {
			if name := spanName(p.kind); name != "" {
				vp := e.VP
				if vp < 0 {
					vp = p.vp
				}
				tids[tid(vp)] = true
				out = append(out, chromeEvent{
					Name: name,
					Ph:   "X",
					TS:   micros(p.ts),
					Dur:  micros(e.TimeNanos) - micros(p.ts),
					PID:  1,
					TID:  tid(vp),
					Args: map[string]any{"thread": e.Thread, "from": p.kind, "to": e.Kind},
				})
			}
		}
		switch e.Kind {
		case "steal", "terminate-request":
			tids[tid(e.VP)] = true
			out = append(out, chromeEvent{
				Name: e.Kind,
				Ph:   "i",
				TS:   micros(e.TimeNanos),
				PID:  1,
				TID:  tid(e.VP),
				Args: map[string]any{"thread": e.Thread, "s": "t"},
			})
		}
		if e.Thread != 0 {
			if e.Kind == "determine" {
				delete(open, e.Thread)
			} else {
				open[e.Thread] = phase{kind: e.Kind, ts: e.TimeNanos, vp: e.VP}
			}
		}
	}

	// Name the tracks so Perfetto shows "vp 0", "vp 1", … instead of ids.
	meta := make([]chromeEvent, 0, len(tids)+1)
	meta = append(meta, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "sting"},
	})
	for t := range tids {
		name := "unplaced"
		if t > 0 {
			name = "vp " + strconv.Itoa(t-1)
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: t,
			Args: map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"})
}
