package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// SpanBuffer is the ready-made SpanSink: a lock-free ring of the most
// recent finished spans. Record is a single atomic increment plus one
// pointer swap — no mutex on the hot path — and overflow accounting
// mirrors the core trace ring's invariant exactly:
//
//	Recorded() == Drained() + Retained() + Dropped()
//
// Each recorded *SpanData leaves the ring exactly once: overwritten by a
// later Record (dropped) or swapped out by Drain (drained); whatever
// remains is retained. Swap on both sides makes the accounting exact even
// while Record and Drain race.
type SpanBuffer struct {
	slots []atomic.Pointer[SpanData]
	head  atomic.Uint64 // next logical position == spans ever recorded

	dropped atomic.Uint64
	drained atomic.Uint64

	mu sync.Mutex // serializes Drain/Spans against each other only
}

// NewSpanBuffer creates a ring retaining the most recent n spans.
func NewSpanBuffer(n int) *SpanBuffer {
	if n <= 0 {
		n = 1024
	}
	return &SpanBuffer{slots: make([]atomic.Pointer[SpanData], n)}
}

// Record is the SpanSink function. Lock-free: concurrent enders claim
// distinct positions via the head counter and publish with one Swap.
func (b *SpanBuffer) Record(sd *SpanData) {
	pos := b.head.Add(1) - 1
	if old := b.slots[pos%uint64(len(b.slots))].Swap(sd); old != nil {
		b.dropped.Add(1)
	}
}

// Spans returns a non-destructive snapshot of the retained spans, ordered
// by start time (concurrent Records may or may not appear).
func (b *SpanBuffer) Spans() []*SpanData {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*SpanData, 0, len(b.slots))
	for i := range b.slots {
		if sd := b.slots[i].Load(); sd != nil {
			out = append(out, sd)
		}
	}
	sortSpans(out)
	return out
}

// Drain removes and returns the retained spans, ordered by start time.
// The dropped/drained totals are cumulative and survive the drain.
func (b *SpanBuffer) Drain() []*SpanData {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*SpanData, 0, len(b.slots))
	for i := range b.slots {
		if sd := b.slots[i].Swap(nil); sd != nil {
			out = append(out, sd)
		}
	}
	b.drained.Add(uint64(len(out)))
	sortSpans(out)
	return out
}

func sortSpans(spans []*SpanData) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNanos != spans[j].StartNanos {
			return spans[i].StartNanos < spans[j].StartNanos
		}
		return spans[i].Span < spans[j].Span
	})
}

// Recorded reports the cumulative number of spans ever recorded.
func (b *SpanBuffer) Recorded() uint64 { return b.head.Load() }

// Dropped reports how many spans were overwritten by ring overflow.
func (b *SpanBuffer) Dropped() uint64 { return b.dropped.Load() }

// Drained reports how many spans Drain has removed.
func (b *SpanBuffer) Drained() uint64 { return b.drained.Load() }

// Retained reports how many spans the ring currently holds.
func (b *SpanBuffer) Retained() uint64 {
	return b.Recorded() - b.Dropped() - b.Drained()
}

// Cap returns the ring capacity.
func (b *SpanBuffer) Cap() int { return len(b.slots) }

// SpanCollector exposes a span ring's occupancy and overflow accounting,
// plus the process-wide open-span gauge, to the metrics registry.
type SpanCollector struct {
	Buffer *SpanBuffer
}

// Collect implements Collector.
func (c SpanCollector) Collect() []Metric {
	b := c.Buffer
	if b == nil {
		return nil
	}
	return []Metric{
		Gauge("sting_spans_retained", "Finished spans currently retained in the span ring.", float64(b.Retained())),
		Counter("sting_span_recorded_total", "Spans ever recorded into the span ring.", float64(b.Recorded())),
		Counter("sting_span_dropped_total", "Oldest spans overwritten by ring overflow.", float64(b.Dropped())),
		Counter("sting_span_drained_total", "Spans removed by explicit drains.", float64(b.Drained())),
		Gauge("sting_spans_open", "Spans started but not yet ended, process-wide.", float64(OpenSpans())),
	}
}
