package obs

import (
	"fmt"
	"net/http"
)

// Handler serves the observability endpoints over plain net/http:
//
//	/metrics      Prometheus text exposition of Registry.Gather
//	/healthz      200 "ok" while Healthy returns nil, 503 otherwise
//	/debug/trace  Chrome trace_event JSON of TraceEvents (open in Perfetto)
//
// Zero-value fields degrade gracefully: a nil Registry serves an empty
// exposition, a nil Healthy always reports healthy, a nil TraceEvents
// makes /debug/trace a 404.
type Handler struct {
	Registry *Registry
	// Healthy reports liveness; return an error (e.g. "draining") to flip
	// /healthz to 503.
	Healthy func() error
	// TraceEvents supplies the trace-ring snapshot for /debug/trace.
	TraceEvents func() []TraceEvent
}

// ServeHTTP implements http.Handler, routing the three endpoints.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/metrics":
		h.serveMetrics(w)
	case "/healthz":
		h.serveHealth(w)
	case "/debug/trace":
		h.serveTrace(w)
	case "/":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "sting observability\n/metrics\n/healthz\n/debug/trace\n")
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) serveMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if h.Registry == nil {
		return
	}
	_ = WritePrometheus(w, h.Registry.Gather())
}

func (h *Handler) serveHealth(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if h.Healthy != nil {
		if err := h.Healthy(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unhealthy: %v\n", err)
			return
		}
	}
	fmt.Fprint(w, "ok\n")
}

func (h *Handler) serveTrace(w http.ResponseWriter) {
	if h.TraceEvents == nil {
		http.Error(w, "tracing not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = WriteChromeTrace(w, h.TraceEvents())
}
