package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Handler serves the observability endpoints over plain net/http:
//
//	/metrics       Prometheus text exposition of Registry.Gather
//	/healthz       liveness: 200 "ok" while Healthy returns nil, 503 otherwise
//	/readyz        readiness: 200 while every Ready component reports nil,
//	               503 otherwise, with per-component detail in the body
//	/debug/trace   Chrome trace_event JSON of TraceEvents (open in Perfetto)
//	/debug/spans   finished spans: JSON dump (default) or ?format=chrome
//	/debug/slo     the SLO engine's evaluated objectives (see obs/tsdb)
//	/debug/pprof/  the runtime profiler, when EnablePprof is set
//
// /debug/trace and /debug/spans honour ?limit=N (the most recent N
// entries), so a long-lived node can be sampled without shipping the whole
// ring; N must be a positive integer — anything else is a 400, never a
// silent default. Zero-value fields degrade gracefully: a nil Registry
// serves an empty exposition, a nil Healthy always reports healthy, a nil
// TraceEvents or Spans makes its endpoint a 404, a nil Diag makes
// /debug/diag a 404, a nil SLO makes /debug/slo a 404, and a nil Ready
// makes /readyz mirror /healthz (liveness is the only signal available).
type Handler struct {
	Registry *Registry
	// Healthy reports liveness — is the process alive and serving at all.
	// Return an error to flip /healthz to 503. Deliberately narrow:
	// draining and SLO state belong to readiness, not liveness, so an
	// orchestrator never restarts a process for being busy.
	Healthy func() error
	// Ready reports per-component readiness for /readyz: any non-nil
	// Err flips the endpoint to 503, and every component's state is
	// printed in the body either way.
	Ready func() []ReadyStatus
	// TraceEvents supplies the trace-ring snapshot for /debug/trace.
	TraceEvents func() []TraceEvent
	// Spans supplies the finished-span snapshot for /debug/spans.
	Spans func() []*SpanData
	// Node names this process in span dumps (default "sting").
	Node string
	// Diag, when set, serves the runtime-diagnosis report under
	// /debug/diag (see internal/diag). Opaque here to keep obs
	// dependency-free.
	Diag http.Handler
	// SLO, when set, serves the SLO engine's evaluated objectives under
	// /debug/slo (see internal/obs/tsdb). Opaque for the same reason.
	SLO http.Handler
	// EnablePprof exposes net/http/pprof under /debug/pprof/. Off by
	// default: the profiler is a diagnostic surface, not a metric one.
	EnablePprof bool
}

// ServeHTTP implements http.Handler, routing the endpoints.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/metrics":
		h.serveMetrics(w)
	case r.URL.Path == "/healthz":
		h.serveHealth(w)
	case r.URL.Path == "/readyz":
		h.serveReady(w)
	case r.URL.Path == "/debug/slo":
		if h.SLO == nil {
			http.Error(w, "slo engine not enabled", http.StatusNotFound)
			return
		}
		h.SLO.ServeHTTP(w, r)
	case r.URL.Path == "/debug/trace":
		h.serveTrace(w, r)
	case r.URL.Path == "/debug/spans":
		h.serveSpans(w, r)
	case r.URL.Path == "/debug/diag":
		if h.Diag == nil {
			http.Error(w, "diagnosis not enabled", http.StatusNotFound)
			return
		}
		h.Diag.ServeHTTP(w, r)
	case strings.HasPrefix(r.URL.Path, "/debug/pprof/"):
		if !h.EnablePprof {
			http.NotFound(w, r)
			return
		}
		h.servePprof(w, r)
	case r.URL.Path == "/":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "sting observability\n/metrics\n/healthz\n/readyz\n/debug/trace\n/debug/spans\n")
		if h.Diag != nil {
			fmt.Fprint(w, "/debug/diag\n")
		}
		if h.SLO != nil {
			fmt.Fprint(w, "/debug/slo\n")
		}
		if h.EnablePprof {
			fmt.Fprint(w, "/debug/pprof/\n")
		}
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) serveMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if h.Registry == nil {
		return
	}
	_ = WritePrometheus(w, h.Registry.Gather())
}

func (h *Handler) serveHealth(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if h.Healthy != nil {
		if err := h.Healthy(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unhealthy: %v\n", err)
			return
		}
	}
	fmt.Fprint(w, "ok\n")
}

// ReadyStatus is one readiness component's report: a name ("drain",
// "slo", …) and its current error, nil when the component is ready.
type ReadyStatus struct {
	Component string
	Err       error
}

func (h *Handler) serveReady(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if h.Ready == nil {
		// No readiness components configured: readiness degrades to
		// liveness so probes pointed here are never wrong, just coarse.
		h.serveHealth(w)
		return
	}
	statuses := h.Ready()
	ready := true
	for _, s := range statuses {
		if s.Err != nil {
			ready = false
		}
	}
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, "unready\n")
	} else {
		fmt.Fprint(w, "ready\n")
	}
	for _, s := range statuses {
		if s.Err != nil {
			fmt.Fprintf(w, "%s: %v\n", s.Component, s.Err)
		} else {
			fmt.Fprintf(w, "%s: ok\n", s.Component)
		}
	}
}

// parseLimit reads ?limit=N. Absence means unlimited (0); a present
// value must be a positive integer — non-numeric or ≤ 0 is an error,
// which the endpoints turn into a 400 rather than silently serving the
// whole ring.
func parseLimit(r *http.Request) (int, error) {
	vals, ok := r.URL.Query()["limit"]
	if !ok {
		return 0, nil
	}
	n, err := strconv.Atoi(vals[0])
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("invalid limit %q: want a positive integer", vals[0])
	}
	return n, nil
}

func (h *Handler) serveTrace(w http.ResponseWriter, r *http.Request) {
	if h.TraceEvents == nil {
		http.Error(w, "tracing not enabled", http.StatusNotFound)
		return
	}
	limit, err := parseLimit(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	events := h.TraceEvents()
	if limit > 0 && len(events) > limit {
		events = events[len(events)-limit:]
	}
	w.Header().Set("Content-Type", "application/json")
	_ = WriteChromeTrace(w, events)
}

func (h *Handler) serveSpans(w http.ResponseWriter, r *http.Request) {
	if h.Spans == nil {
		http.Error(w, "span tracing not enabled", http.StatusNotFound)
		return
	}
	limit, err := parseLimit(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spans := h.Spans()
	if limit > 0 && len(spans) > limit {
		spans = spans[len(spans)-limit:]
	}
	node := h.Node
	if node == "" {
		node = "sting"
	}
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("format") == "chrome" {
		_ = WriteChromeSpans(w, []NodeSpans{{Node: node, Spans: spans}})
		return
	}
	_ = WriteSpansJSON(w, node, spans)
}

func (h *Handler) servePprof(w http.ResponseWriter, r *http.Request) {
	switch strings.TrimPrefix(r.URL.Path, "/debug/pprof/") {
	case "cmdline":
		pprof.Cmdline(w, r)
	case "profile":
		pprof.Profile(w, r)
	case "symbol":
		pprof.Symbol(w, r)
	case "trace":
		pprof.Trace(w, r)
	default:
		pprof.Index(w, r) // named profiles (heap, goroutine, …) and the index
	}
}
