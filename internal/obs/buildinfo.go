package obs

import "runtime"

// BuildInfo returns a collector emitting the sting_build_info gauge: a
// constant-1 sample whose labels carry the node's identity facts — go
// version (added automatically), wire protocol version, default engine,
// whatever the caller passes. The Prometheus build-info idiom: joins and
// dashboards read the labels, never the value, so a per-node version
// column costs one series.
func BuildInfo(labels ...Label) Collector {
	ls := append([]Label{L("go_version", runtime.Version())}, labels...)
	m := Gauge("sting_build_info", "Build and configuration identity of this node; value is always 1.", 1, ls...)
	return CollectorFunc(func() []Metric { return []Metric{m} })
}
