package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Span exposition: a JSON dump format (what /debug/spans serves and
// `stingd -trace-out` writes on drain) and a Chrome trace_event rendering
// with cross-node flow arrows — the client half of a wire operation emits
// a flow start (ph "s") keyed by its span id, the server half emits the
// matching finish (ph "f") keyed by its parent id, so Perfetto draws the
// wire hop as an arrow between the two process tracks. scripts/tracecat
// merges several nodes' dumps through the same renderer.

// spanJSON is one span in the dump format; ids travel as hex strings
// because JSON numbers cannot hold 64 bits faithfully.
type spanJSON struct {
	Trace         string      `json:"trace"`
	Span          string      `json:"span"`
	Parent        string      `json:"parent,omitempty"`
	Name          string      `json:"name"`
	Kind          string      `json:"kind"`
	StartNanos    int64       `json:"start_ns"`
	DurationNanos int64       `json:"dur_ns"`
	Attrs         []Attr      `json:"attrs,omitempty"`
	Events        []SpanEvent `json:"events,omitempty"`
	EventsDropped int         `json:"events_dropped,omitempty"`
}

// spanDump is the dump envelope: which node produced the spans, then the
// spans themselves.
type spanDump struct {
	Node  string     `json:"node"`
	Spans []spanJSON `json:"spans"`
}

// WriteSpansJSON writes the span dump format for one node.
func WriteSpansJSON(w io.Writer, node string, spans []*SpanData) error {
	d := spanDump{Node: node, Spans: make([]spanJSON, len(spans))}
	for i, sd := range spans {
		j := spanJSON{
			Trace:         sd.Trace.String(),
			Span:          sd.Span.String(),
			Name:          sd.Name,
			Kind:          sd.Kind.String(),
			StartNanos:    sd.StartNanos,
			DurationNanos: sd.DurationNanos,
			Attrs:         sd.Attrs,
			Events:        sd.Events,
			EventsDropped: sd.EventsDropped,
		}
		if sd.Parent != 0 {
			j.Parent = sd.Parent.String()
		}
		d.Spans[i] = j
	}
	return json.NewEncoder(w).Encode(d)
}

// DecodeSpansJSON inverts WriteSpansJSON (scripts/tracecat reads per-node
// dumps with it).
func DecodeSpansJSON(r io.Reader) (node string, spans []*SpanData, err error) {
	var d spanDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return "", nil, err
	}
	spans = make([]*SpanData, len(d.Spans))
	for i, j := range d.Spans {
		sd := &SpanData{
			Name:          j.Name,
			Kind:          ParseSpanKind(j.Kind),
			StartNanos:    j.StartNanos,
			DurationNanos: j.DurationNanos,
			Attrs:         j.Attrs,
			Events:        j.Events,
			EventsDropped: j.EventsDropped,
		}
		if sd.Trace, err = parseTraceID(j.Trace); err != nil {
			return "", nil, fmt.Errorf("span %d: %w", i, err)
		}
		if sd.Span, err = parseSpanID(j.Span); err != nil {
			return "", nil, fmt.Errorf("span %d: %w", i, err)
		}
		if j.Parent != "" {
			if sd.Parent, err = parseSpanID(j.Parent); err != nil {
				return "", nil, fmt.Errorf("span %d: %w", i, err)
			}
		}
		spans[i] = sd
	}
	return d.Node, spans, nil
}

func parseTraceID(s string) (TraceID, error) {
	if len(s) != 32 {
		return TraceID{}, fmt.Errorf("trace id %q is not 32 hex digits", s)
	}
	var id TraceID
	if _, err := fmt.Sscanf(s[:16], "%016x", &id.Hi); err != nil {
		return TraceID{}, fmt.Errorf("trace id %q: %v", s, err)
	}
	if _, err := fmt.Sscanf(s[16:], "%016x", &id.Lo); err != nil {
		return TraceID{}, fmt.Errorf("trace id %q: %v", s, err)
	}
	return id, nil
}

func parseSpanID(s string) (SpanID, error) {
	var v uint64
	if _, err := fmt.Sscanf(s, "%016x", &v); err != nil {
		return 0, fmt.Errorf("span id %q: %v", s, err)
	}
	return SpanID(v), nil
}

// NodeSpans pairs one node's name with its finished spans, for the merged
// multi-node rendering.
type NodeSpans struct {
	Node  string
	Spans []*SpanData
}

// WriteChromeSpans renders one or more nodes' spans as Chrome trace_event
// JSON: one Perfetto process per node, one track per trace on that node,
// each span a duration slice carrying its ids and attrs, span events as
// instants, and flow arrows binding the client and server halves of every
// wire hop.
func WriteChromeSpans(w io.Writer, nodes []NodeSpans) error {
	var t0 int64
	first := true
	for _, ns := range nodes {
		for _, sd := range ns.Spans {
			if first || sd.StartNanos < t0 {
				t0 = sd.StartNanos
				first = false
			}
		}
	}
	micros := func(ns int64) float64 { return float64(ns-t0) / 1e3 }

	var out []chromeEvent
	meta := []chromeEvent{}
	for pidx, ns := range nodes {
		pid := pidx + 1
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": ns.Node},
		})
		// One track per trace, ordered by each trace's first span so the
		// layout is deterministic.
		tids := make(map[TraceID]int)
		order := make([]*SpanData, len(ns.Spans))
		copy(order, ns.Spans)
		sort.Slice(order, func(i, j int) bool { return order[i].StartNanos < order[j].StartNanos })
		for _, sd := range order {
			if _, ok := tids[sd.Trace]; !ok {
				tid := len(tids) + 1
				tids[sd.Trace] = tid
				meta = append(meta, chromeEvent{
					Name: "thread_name", Ph: "M", PID: pid, TID: tid,
					Args: map[string]any{"name": "trace " + sd.Trace.String()[:8]},
				})
			}
		}
		for _, sd := range order {
			tid := tids[sd.Trace]
			args := map[string]any{
				"trace":  sd.Trace.String(),
				"span":   sd.Span.String(),
				"parent": sd.Parent.String(),
				"kind":   sd.Kind.String(),
			}
			for _, a := range sd.Attrs {
				args["attr."+a.Key] = a.Value
			}
			out = append(out, chromeEvent{
				Name: sd.Name,
				Ph:   "X",
				TS:   micros(sd.StartNanos),
				Dur:  float64(sd.DurationNanos) / 1e3,
				PID:  pid,
				TID:  tid,
				Args: args,
			})
			for _, ev := range sd.Events {
				out = append(out, chromeEvent{
					Name: ev.Name,
					Ph:   "i",
					TS:   micros(ev.TimeNanos),
					PID:  pid,
					TID:  tid,
					Args: map[string]any{"span": sd.Span.String(), "s": "t"},
				})
			}
			// The wire hop: a client span starts a flow under its own id;
			// the server span it propagated to finishes the flow under its
			// parent id — the same value, so Perfetto binds the arrow.
			switch {
			case sd.Kind == SpanClient:
				out = append(out, chromeEvent{
					Name: "wire", Ph: "s", TS: micros(sd.StartNanos),
					PID: pid, TID: tid, ID: sd.Span.String(), Cat: "wire",
				})
			case sd.Kind == SpanServer && sd.Parent != 0:
				out = append(out, chromeEvent{
					Name: "wire", Ph: "f", BP: "e", TS: micros(sd.StartNanos),
					PID: pid, TID: tid, ID: sd.Parent.String(), Cat: "wire",
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"})
}
