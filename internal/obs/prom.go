package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders samples in the Prometheus text exposition format
// (version 0.0.4), hand-rolled — no external dependency. Samples must be
// sorted by name (Registry.Gather's order); HELP and TYPE are emitted once
// per family, histogram samples expand to cumulative _bucket/_sum/_count
// series.
func WritePrometheus(w io.Writer, metrics []Metric) error {
	var lastFamily string
	for _, m := range metrics {
		if m.Name != lastFamily {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(m.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			lastFamily = m.Name
		}
		if m.Kind == KindHistogram {
			if err := writeHistogram(w, m); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, renderLabels(m.Labels), formatFloat(m.Value)); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, m Metric) error {
	h := m.Hist
	if h == nil {
		h = &HistogramSnapshot{}
	}
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		le := append(append([]Label{}, m.Labels...), L("le", formatFloat(bound)))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, renderLabels(le), cum); err != nil {
			return err
		}
	}
	if len(h.Counts) > len(h.Bounds) {
		cum += h.Counts[len(h.Bounds)]
	}
	inf := append(append([]Label{}, m.Labels...), L("le", "+Inf"))
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, renderLabels(inf), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, renderLabels(m.Labels), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, renderLabels(m.Labels), cum)
	return err
}

func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
