package sting

// Integration tests over the public facade: every subsystem reachable from
// the sting package exercised through its exported surface, the way a
// downstream user would.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func boot(t testing.TB, procs, vps int) *VM {
	t.Helper()
	m := NewMachine(MachineConfig{Processors: procs})
	t.Cleanup(m.Shutdown)
	vm, err := m.NewVM(VMConfig{VPs: vps})
	if err != nil {
		t.Fatalf("NewVM: %v", err)
	}
	return vm
}

func TestFacadeQuickstart(t *testing.T) {
	vm := boot(t, 2, 2)
	vals, err := vm.Run(func(ctx *Context) ([]Value, error) {
		child := ctx.Fork(func(*Context) ([]Value, error) {
			return []Value{21 * 2}, nil
		}, nil)
		return ctx.Value(child)
	})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 42 {
		t.Fatalf("got %v", vals)
	}
}

func TestFacadeParallelMapReduce(t *testing.T) {
	vm := boot(t, 4, 4)
	const n = 64
	vals, err := vm.Run(func(ctx *Context) ([]Value, error) {
		futuresList := make([]*Future, n)
		for i := range futuresList {
			i := i
			futuresList[i] = SpawnFuture(ctx, func(*Context) (Value, error) {
				return i * i, nil
			})
		}
		results, err := TouchAll(ctx, futuresList)
		if err != nil {
			return nil, err
		}
		sum := 0
		for _, v := range results {
			sum += v.(int)
		}
		return []Value{sum}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < n; i++ {
		want += i * i
	}
	if vals[0] != want {
		t.Fatalf("sum = %v, want %d", vals[0], want)
	}
}

func TestFacadeTupleSpacePipeline(t *testing.T) {
	vm := boot(t, 2, 4)
	const jobs = 50
	vals, err := vm.Run(func(ctx *Context) ([]Value, error) {
		ts := NewTupleSpace(KindQueue, TupleSpaceConfig{})
		worker := func(c *Context) ([]Value, error) {
			handled := 0
			for {
				_, bind, err := ts.Get(c, Template{"job", Formal("n")})
				if err != nil {
					return nil, err
				}
				n := bind["n"].(int)
				if n < 0 {
					return []Value{handled}, nil
				}
				if err := ts.Put(c, Tuple{"done", n * 2}); err != nil {
					return nil, err
				}
				handled++
			}
		}
		w1 := ctx.Fork(worker, vm.VP(1))
		w2 := ctx.Fork(worker, vm.VP(2))
		for i := 0; i < jobs; i++ {
			if err := ts.Put(ctx, Tuple{"job", i}); err != nil {
				return nil, err
			}
		}
		total := 0
		for i := 0; i < jobs; i++ {
			_, bind, err := ts.Get(ctx, Template{"done", Formal("v")})
			if err != nil {
				return nil, err
			}
			total += bind["v"].(int)
		}
		_ = ts.Put(ctx, Tuple{"job", -1})
		_ = ts.Put(ctx, Tuple{"job", -1})
		ctx.Wait(w1)
		ctx.Wait(w2)
		return []Value{total}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := jobs * (jobs - 1) // sum of 2i
	if vals[0] != want {
		t.Fatalf("total = %v, want %d", vals[0], want)
	}
}

func TestFacadeSpeculation(t *testing.T) {
	vm := boot(t, 2, 2)
	_, err := vm.Run(func(ctx *Context) ([]Value, error) {
		set := NewTaskSet(ctx, "race")
		set.Speculate(1, func(c *Context) ([]Value, error) {
			for {
				c.Yield()
			}
		})
		set.Speculate(9, func(*Context) ([]Value, error) {
			return []Value{"winner"}, nil
		})
		vals, err := set.First()
		if err != nil {
			return nil, err
		}
		if vals[0] != "winner" {
			t.Errorf("first = %v", vals[0])
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeStreams(t *testing.T) {
	vm := boot(t, 2, 2)
	vals, err := vm.Run(func(ctx *Context) ([]Value, error) {
		s := IntegerStream(ctx, 10)
		collected, err := s.Collect(ctx)
		if err != nil {
			return nil, err
		}
		return []Value{len(collected)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 9 { // 2..10
		t.Fatalf("collected %v", vals[0])
	}
}

func TestFacadeGroupTermination(t *testing.T) {
	vm := boot(t, 2, 2)
	_, err := vm.Run(func(ctx *Context) ([]Value, error) {
		parent := ctx.Fork(func(c *Context) ([]Value, error) {
			c.Fork(func(cc *Context) ([]Value, error) {
				for {
					cc.Yield()
				}
			}, nil, WithStealable(false))
			for {
				c.Yield()
			}
		}, nil, WithStealable(false))
		for len(parent.Children()) == 0 {
			ctx.Yield()
		}
		parent.ChildGroup().Terminate()
		ThreadTerminate(parent)
		ctx.Wait(parent)
		for _, c := range parent.Children() {
			ctx.Wait(c)
			if !c.Terminated() {
				t.Error("child survived group termination")
			}
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCustomPolicyManager(t *testing.T) {
	// A user-written policy manager: strict FIFO with an instrumented
	// counter, demonstrating the §3.3 customization point end to end.
	// Serialization is the manager's own concern (the paper's fourth
	// classification dimension), so the test PM carries its lock.
	type countingPM struct {
		mu       sync.Mutex
		q        []Runnable
		enqueues int
	}
	pms := map[*VP]*countingPM{}
	vmx := func() *VM {
		m := NewMachine(MachineConfig{Processors: 1})
		t.Cleanup(m.Shutdown)
		vm, err := m.NewVM(VMConfig{
			VPs: 1,
			PolicyFactory: func(vp *VP) PolicyManager {
				pm := &countingPM{}
				pms[vp] = pm
				return policyFuncs{
					next: func(*VP) Runnable {
						pm.mu.Lock()
						defer pm.mu.Unlock()
						if len(pm.q) == 0 {
							return nil
						}
						r := pm.q[0]
						pm.q = pm.q[1:]
						return r
					},
					enqueue: func(_ *VP, r Runnable, _ EnqueueState) {
						pm.mu.Lock()
						defer pm.mu.Unlock()
						pm.enqueues++
						pm.q = append(pm.q, r)
					},
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return vm
	}()
	vals, err := vmx.Run(func(ctx *Context) ([]Value, error) {
		a := ctx.Fork(func(*Context) ([]Value, error) { return []Value{1}, nil }, nil,
			WithStealable(false))
		b := ctx.Fork(func(*Context) ([]Value, error) { return []Value{2}, nil }, nil,
			WithStealable(false))
		va, err := ctx.Value1(a)
		if err != nil {
			return nil, err
		}
		vb, err := ctx.Value1(b)
		if err != nil {
			return nil, err
		}
		return []Value{va.(int) + vb.(int)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 3 {
		t.Fatalf("got %v", vals)
	}
	total := 0
	for _, pm := range pms {
		pm.mu.Lock()
		total += pm.enqueues
		pm.mu.Unlock()
	}
	if total == 0 {
		t.Fatal("custom policy manager never saw an enqueue")
	}
}

// policyFuncs adapts closures to the PolicyManager interface for the test.
type policyFuncs struct {
	next    func(vp *VP) Runnable
	enqueue func(vp *VP, r Runnable, st EnqueueState)
}

// Runnable and EnqueueState are re-exported for custom managers.
func (p policyFuncs) GetNextThread(vp *VP) Runnable { return p.next(vp) }
func (p policyFuncs) EnqueueThread(vp *VP, r Runnable, st EnqueueState) {
	p.enqueue(vp, r, st)
}
func (p policyFuncs) SetPriority(*VP, *Thread, int)          {}
func (p policyFuncs) SetQuantum(*VP, *Thread, time.Duration) {}
func (p policyFuncs) AllocateVP(vm *VM) *VP                  { vp, _ := vm.AddVP(); return vp }
func (p policyFuncs) VPIdle(*VP)                             {}

func TestFacadeErrorPropagation(t *testing.T) {
	vm := boot(t, 1, 1)
	boom := errors.New("kaput")
	_, err := vm.Run(func(ctx *Context) ([]Value, error) {
		child := ctx.Fork(func(*Context) ([]Value, error) {
			return nil, boom
		}, nil)
		_, err := ctx.Value(child)
		return nil, err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the child failure", err)
	}
}

func TestFacadeTopologies(t *testing.T) {
	m := NewMachine(MachineConfig{Processors: 1})
	t.Cleanup(m.Shutdown)
	for _, tc := range []struct {
		topo Topology
		vps  int
	}{
		{Ring{}, 4},
		{Mesh{Cols: 2}, 4},
		{Torus{Cols: 2}, 4},
		{Hypercube{}, 8},
		{SystolicArray{}, 5},
	} {
		vm, err := m.NewVM(VMConfig{VPs: tc.vps, Topology: tc.topo})
		if err != nil {
			t.Fatal(err)
		}
		for _, vp := range vm.VPs() {
			for _, n := range NeighborVPs(vp) {
				if n == nil {
					t.Errorf("%s: nil neighbor of vp %d", tc.topo.Name(), vp.Index())
				}
			}
		}
	}
}

func TestFacadeMultipleVMsIsolated(t *testing.T) {
	m := NewMachine(MachineConfig{Processors: 2})
	t.Cleanup(m.Shutdown)
	vm1, err := m.NewVM(VMConfig{Name: "one", VPs: 2})
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := m.NewVM(VMConfig{Name: "two", VPs: 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func(vm *VM, tag string) ([]Value, error) {
		return vm.Run(func(ctx *Context) ([]Value, error) {
			kids := make([]*Thread, 10)
			for i := range kids {
				kids[i] = ctx.Fork(func(*Context) ([]Value, error) {
					return []Value{tag}, nil
				}, nil)
			}
			for _, k := range kids {
				if v, err := ctx.Value1(k); err != nil || v != tag {
					return nil, fmt.Errorf("cross-VM leak: %v %v", v, err)
				}
			}
			return []Value{tag}, nil
		})
	}
	if _, err := run(vm1, "one"); err != nil {
		t.Fatal(err)
	}
	if _, err := run(vm2, "two"); err != nil {
		t.Fatal(err)
	}
	if vm1.Stats().ThreadsCreated != vm2.Stats().ThreadsCreated {
		t.Fatalf("VM thread accounting differs: %d vs %d",
			vm1.Stats().ThreadsCreated, vm2.Stats().ThreadsCreated)
	}
}

// TestFacadeObservability drives the obs surface through the public
// exports: register a VM collector and a custom source, render the
// gathered metrics as Prometheus text, and export trace events as Chrome
// trace_event JSON.
func TestFacadeObservability(t *testing.T) {
	vm := boot(t, 2, 2)
	trace := NewTraceBuffer(1024)
	SetTracer(trace.Record)
	defer SetTracer(nil)

	if _, err := vm.Run(func(ctx *Context) ([]Value, error) {
		child := ctx.Fork(func(*Context) ([]Value, error) { return []Value{1}, nil }, nil)
		return ctx.Value(child)
	}); err != nil {
		t.Fatal(err)
	}

	hist := NewObsHistogram()
	hist.Observe(0.004)
	reg := NewObsRegistry()
	reg.Register("vm", VMCollector{VM: vm})
	reg.Register("trace", TraceCollector{Buffer: trace})
	reg.Register("app", ObsCollectorFunc(func() []ObsMetric {
		return []ObsMetric{ObsHistogramSample("app_latency_seconds", "App-defined latency.", hist)}
	}))

	var prom strings.Builder
	if err := WritePrometheus(&prom, reg.Gather()); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"sting_vp_dispatches_total", "sting_trace_events", "app_latency_seconds_bucket"} {
		if !strings.Contains(prom.String(), family) {
			t.Errorf("exposition missing %s", family)
		}
	}

	var chrome strings.Builder
	if err := WriteChromeTrace(&chrome, ObsTraceEvents(trace.Events())); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"traceEvents"`) {
		t.Error("trace export missing traceEvents array")
	}
	if DefaultRegistry == nil {
		t.Error("DefaultRegistry is nil")
	}
}
