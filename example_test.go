package sting_test

// Runnable godoc examples for the public API; `go test` verifies their
// output, so the documentation cannot rot.

import (
	"fmt"
	"sort"

	sting "repro"
)

// The basic lifecycle: boot a machine, run a thread, read its value.
func Example() {
	m := sting.NewMachine(sting.MachineConfig{Processors: 2})
	defer m.Shutdown()
	vm, _ := m.NewVM(sting.VMConfig{VPs: 2})

	vals, _ := vm.Run(func(ctx *sting.Context) ([]sting.Value, error) {
		child := ctx.Fork(func(*sting.Context) ([]sting.Value, error) {
			return []sting.Value{6 * 7}, nil
		}, nil)
		return ctx.Value(child)
	})
	fmt.Println(vals[0])
	// Output: 42
}

// Delayed threads are stolen when demanded: the thunk runs inline on the
// demanding thread's TCB, with no context switch.
func ExampleContext_CreateThread() {
	m := sting.NewMachine(sting.MachineConfig{Processors: 1})
	defer m.Shutdown()
	vm, _ := m.NewVM(sting.VMConfig{VPs: 1})

	vals, _ := vm.Run(func(ctx *sting.Context) ([]sting.Value, error) {
		lazy := ctx.CreateThread(func(*sting.Context) ([]sting.Value, error) {
			return []sting.Value{"ran on demand"}, nil
		})
		fmt.Println("before touch:", lazy.State())
		v, err := ctx.Value1(lazy)
		if err != nil {
			return nil, err
		}
		fmt.Println("after touch:", lazy.State(), "-", v)
		return nil, nil
	})
	_ = vals
	// Output:
	// before touch: delayed
	// after touch: determined - ran on demand
}

// Tuple spaces coordinate producers and consumers by content.
func ExampleTupleSpace() {
	m := sting.NewMachine(sting.MachineConfig{Processors: 2})
	defer m.Shutdown()
	vm, _ := m.NewVM(sting.VMConfig{VPs: 2})

	vm.Run(func(ctx *sting.Context) ([]sting.Value, error) {
		ts := sting.NewTupleSpace(sting.KindHash, sting.TupleSpaceConfig{})
		ctx.Fork(func(c *sting.Context) ([]sting.Value, error) {
			return nil, ts.Put(c, sting.Tuple{"point", 3, 4})
		}, nil)
		_, bind, err := ts.Get(ctx, sting.Template{"point", sting.Formal("x"), sting.Formal("y")})
		if err != nil {
			return nil, err
		}
		fmt.Printf("x=%v y=%v\n", bind["x"], bind["y"])
		return nil, nil
	})
	// Output: x=3 y=4
}

// Futures give MultiLisp-style result parallelism.
func ExampleSpawnFuture() {
	m := sting.NewMachine(sting.MachineConfig{Processors: 2})
	defer m.Shutdown()
	vm, _ := m.NewVM(sting.VMConfig{VPs: 2})

	vm.Run(func(ctx *sting.Context) ([]sting.Value, error) {
		fs := make([]*sting.Future, 5)
		for i := range fs {
			i := i
			fs[i] = sting.SpawnFuture(ctx, func(*sting.Context) (sting.Value, error) {
				return i * 10, nil
			})
		}
		vals, err := sting.TouchAll(ctx, fs)
		if err != nil {
			return nil, err
		}
		fmt.Println(vals)
		return nil, nil
	})
	// Output: [0 10 20 30 40]
}

// WaitForOne races alternatives and terminates the losers (OR-parallelism).
func ExampleWaitForOne() {
	m := sting.NewMachine(sting.MachineConfig{Processors: 2})
	defer m.Shutdown()
	vm, _ := m.NewVM(sting.VMConfig{VPs: 2})

	vm.Run(func(ctx *sting.Context) ([]sting.Value, error) {
		slow := ctx.Fork(func(c *sting.Context) ([]sting.Value, error) {
			for {
				c.Yield()
			}
		}, vm.VP(1), sting.WithStealable(false))
		fast := ctx.Fork(func(*sting.Context) ([]sting.Value, error) {
			return []sting.Value{"first!"}, nil
		}, nil, sting.WithStealable(false))
		winner, err := sting.WaitForOne(ctx, []*sting.Thread{slow, fast})
		if err != nil {
			return nil, err
		}
		vals, _ := winner.TryValue()
		fmt.Println(vals[0])
		return nil, nil
	})
	// Output: first!
}

// Streams give blocking, position-immutable sequences (the sieve substrate).
func ExampleStream() {
	m := sting.NewMachine(sting.MachineConfig{Processors: 2})
	defer m.Shutdown()
	vm, _ := m.NewVM(sting.VMConfig{VPs: 2})

	vm.Run(func(ctx *sting.Context) ([]sting.Value, error) {
		s := sting.IntegerStream(ctx, 6)
		collected, err := s.Collect(ctx)
		if err != nil {
			return nil, err
		}
		var out []int
		for _, v := range collected {
			out = append(out, v.(int))
		}
		sort.Ints(out)
		fmt.Println(out)
		return nil, nil
	})
	// Output: [2 3 4 5 6]
}

// Custom policy managers change scheduling without touching the thread
// controller: threads run highest-priority-first under the Priority regime.
func ExampleVMConfig_policyFactory() {
	m := sting.NewMachine(sting.MachineConfig{Processors: 1})
	defer m.Shutdown()
	vm, _ := m.NewVM(sting.VMConfig{
		VPs:           1,
		PolicyFactory: sting.PriorityPM(),
	})

	vm.Run(func(ctx *sting.Context) ([]sting.Value, error) {
		var order []string
		low := ctx.Fork(func(*sting.Context) ([]sting.Value, error) {
			order = append(order, "low")
			return nil, nil
		}, nil, sting.WithPriority(1), sting.WithStealable(false))
		high := ctx.Fork(func(*sting.Context) ([]sting.Value, error) {
			order = append(order, "high")
			return nil, nil
		}, nil, sting.WithPriority(9), sting.WithStealable(false))
		ctx.Wait(low)
		ctx.Wait(high)
		fmt.Println(order)
		return nil, nil
	})
	// Output: [high low]
}
