# Tier-1 gate plus the race-sensitive packages. `make` = build+vet+test.

GO ?= go

.PHONY: all build vet test race check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The fabric and tuple-space packages carry the concurrency-critical
# paths (wire callbacks, cancel tokens, hash-bin locking); run them
# under the race detector on every check.
race:
	$(GO) test -race ./internal/remote/... ./internal/tspace/...

check: build vet test race

bench:
	$(GO) test -bench BenchmarkRemoteTuplePingPong -run xxx ./internal/remote/
	$(GO) run ./cmd/stingbench -table remote
