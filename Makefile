# Tier-1 gate plus the race-sensitive packages. `make` = build+vet+test.

GO ?= go

.PHONY: all build vet test race check bench sched-bench bench-compare remote-bench remote-bench-compare obs-smoke obs-bench cluster-smoke trace-smoke stm-bench stm-bench-compare stm-smoke diag-smoke top-smoke sample-bench vm-bench vm-bench-compare vm-smoke vm-fuzz clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The fabric, cluster, tuple-space, and observability packages carry the
# concurrency-critical paths (wire callbacks, cancel tokens, fan-out
# racing, hash-bin locking, lock-free histograms, the trace ring); run
# them under the race detector on every check.
race:
	$(GO) test -race ./internal/remote/... ./internal/cluster/... ./internal/tspace/... ./internal/sio/... ./internal/obs/... ./internal/core/... ./internal/vm/...

check: build vet test race

bench:
	$(GO) test -bench BenchmarkRemoteTuplePingPong -run xxx ./internal/remote/
	$(GO) run ./cmd/stingbench -table remote

# Regenerate the scheduler-core table and refresh the committed baseline.
sched-bench:
	$(GO) run ./cmd/stingbench -table sched -json BENCH_sched.json

# Rerun the scheduler table and fail on >10% ns/op regression against the
# committed BENCH_sched.json baseline.
bench-compare:
	./scripts/bench_compare.sh

# Regenerate the remote fabric table (ping-pong RTTs + the Put
# saturation sweep) and refresh the committed baseline. The
# remote/sat rows carry the ≥5× pipelined-vs-serial acceptance gate;
# the codec allocs/op gate lives in the -benchmem benchmarks below.
remote-bench:
	$(GO) test -run xxx -bench 'BenchmarkCodec' -benchmem ./internal/remote/
	$(GO) run ./cmd/stingbench -table remote -json BENCH_remote.json

# Rerun the remote table and fail on >10% ns/op regression against the
# committed BENCH_remote.json baseline (advisory in CI).
remote-bench-compare:
	./scripts/remote_compare.sh

# Boot stingd -http, scrape /metrics + /healthz + /debug/trace, grep for
# the required metric families.
obs-smoke:
	./scripts/obs_smoke.sh

# Boot stingd with a tight stall SLO, plant a hot key and a stalled
# waiter, assert /debug/diag surfaces both and the flight recorder dumps.
diag-smoke:
	./scripts/diag_smoke.sh

# Boot a 3-shard stingd cluster, drive keyed + wildcard ops through the
# sting CLI, assert all shards healthy with zero misroutes.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Boot a 2-shard cluster with SLO evaluation on (one objective engineered
# to breach), drive traffic, and assert /debug/slo + the /readyz gate +
# the stingtop -once -json rollup (cluster p99 from merged buckets,
# merged count = shard sum).
top-smoke:
	./scripts/top_smoke.sh

# The sampler-overhead ablation (EXPERIMENTS.md): remote ping-pong with
# the time-series sampler + SLO engine off vs on at a 10ms interval.
sample-bench:
	$(GO) run ./cmd/stingbench -table remote -sample

# Boot a 2-shard cluster with causal tracing on, run a traced op from the
# sting CLI, merge all span dumps with tracecat, and assert the stitched
# trace has client→server parentage under one trace ID.
trace-smoke:
	./scripts/trace_smoke.sh

# Regenerate the STM contention sweep + overhead ablation and refresh the
# committed baseline.
stm-bench:
	$(GO) run ./cmd/stingbench -table stm -json BENCH_stm.json

# Rerun the STM sweep and fail on >10% ns/op regression against the
# committed BENCH_stm.json baseline (advisory in CI).
stm-bench-compare:
	./scripts/stm_compare.sh

# Boot a single-shard stingd, run (atomic ...) transfers from the sting
# CLI over the wire, assert conservation and server-side stm metrics.
stm-smoke:
	./scripts/stm_smoke.sh

# Regenerate the execution-engine ablation (bytecode VM vs tree-walker)
# and refresh the committed baseline. The vm/fib and vm/forkjoin rows
# carry the ≥2× speedup acceptance gate.
vm-bench:
	$(GO) run ./cmd/stingbench -table vm -json BENCH_vm.json

# Rerun the engine ablation and fail on >10% regression against the
# committed BENCH_vm.json baseline (advisory in CI).
vm-bench-compare:
	./scripts/vm_compare.sh

# Run every Scheme example under both engines and require byte-identical
# stdout; also assert the default engine is the VM.
vm-smoke:
	./scripts/vm_smoke.sh

# A short engine-differential fuzz run (the committed corpus replays in
# plain `go test`; this searches for new divergences).
vm-fuzz:
	$(GO) test -run FuzzEngines -fuzz FuzzEngines -fuzztime 15s ./internal/scheme/

# The metric-collection overhead ablation (EXPERIMENTS.md): the remote
# ping-pong with the per-op latency histograms on vs off.
obs-bench:
	$(GO) test -run xxx -bench 'BenchmarkRemoteTuplePingPong' -benchtime 3000x -count 3 ./internal/remote/
